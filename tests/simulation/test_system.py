"""Behavioral tests of the streaming system (protocol interactions)."""

import pytest

from repro.core.model import PeerRole
from repro.simulation.config import SimulationConfig
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder

HOUR = 3600.0


def small_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 4},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=1,
        horizon_seconds=144 * HOUR,
        master_seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestPopulationConstruction:
    def test_population_counts(self):
        system = StreamingSystem(small_config())
        assert len(system.peers) == 104
        seeds = [p for p in system.peers if p.is_seed]
        assert len(seeds) == 4
        assert all(p.peer_class == 1 for p in seeds)

    def test_seeds_registered_as_suppliers(self):
        system = StreamingSystem(small_config())
        assert system.num_suppliers == 4
        assert system.ledger.sessions == 2  # 4 x R0/2

    def test_requester_class_mix(self):
        system = StreamingSystem(small_config())
        from collections import Counter

        mix = Counter(p.peer_class for p in system.peers if not p.is_seed)
        assert mix == {1: 10, 2: 10, 3: 40, 4: 40}

    def test_class_labels_shuffled_over_arrival_order(self):
        # Requesters arrive in peer-id order; their classes must be mixed,
        # not blocked by class.
        system = StreamingSystem(small_config())
        requesters = [p for p in system.peers if not p.is_seed]
        first_half = [p.peer_class for p in requesters[:50]]
        assert len(set(first_half)) > 1


class TestEndToEnd:
    def test_everyone_eventually_admitted(self):
        system = StreamingSystem(small_config())
        metrics = system.run()
        assert sum(metrics.admitted.values()) == 100
        assert all(
            p.role is PeerRole.SUPPLYING for p in system.peers
        ), "every admitted peer must end as a supplier"

    def test_capacity_reaches_population_maximum(self):
        system = StreamingSystem(small_config())
        metrics = system.run()
        # 4+10 class-1, 10 class-2, 40 class-3, 40 class-4
        expected = (14 * 8 + 10 * 4 + 40 * 2 + 40 * 1) // 16
        assert metrics.final_capacity() == expected

    def test_admitted_peers_record_session_facts(self):
        system = StreamingSystem(small_config())
        system.run()
        admitted = [p for p in system.peers if not p.is_seed]
        for peer in admitted:
            assert peer.buffering_delay_slots == peer.num_suppliers_served_by
            assert peer.num_suppliers_served_by >= 2  # max offer is R0/2

    def test_deterministic_for_fixed_seed(self):
        result_a = StreamingSystem(small_config()).run().to_dict()
        result_b = StreamingSystem(small_config()).run().to_dict()
        assert result_a == result_b

    def test_different_seed_changes_outcome(self):
        a = StreamingSystem(small_config(master_seed=1)).run().to_dict()
        b = StreamingSystem(small_config(master_seed=2)).run().to_dict()
        assert a != b

    def test_chord_lookup_end_to_end(self):
        config = small_config(lookup="chord", seed_suppliers={1: 8})
        system = StreamingSystem(config)
        metrics = system.run()
        assert sum(metrics.admitted.values()) == 100

    def test_message_stats_recorded(self):
        system = StreamingSystem(small_config())
        system.run()
        stats = system.transport.stats
        assert stats.count_by_kind["probe"] > 0
        assert stats.count_by_kind["session_start"] > 0

    def test_tracking_disabled_skips_transport(self):
        system = StreamingSystem(small_config(track_messages=False))
        assert system.transport is None
        system.run()  # must still work


class TestProtocolInteractions:
    def test_sessions_respect_single_session_per_supplier(self):
        trace = TraceRecorder()
        system = StreamingSystem(small_config(), trace=trace)
        system.run()
        # Replay admissions/session lifetimes: a supplier must never be
        # enlisted twice within one show time.
        busy_until: dict[int, float] = {}
        for event in trace.of_kind("admission"):
            for supplier_id in event["suppliers"]:
                assert busy_until.get(supplier_id, -1.0) <= event["t"]
                busy_until[supplier_id] = event["t"] + 3600.0

    def test_admission_uses_exactly_r0_of_bandwidth(self):
        trace = TraceRecorder()
        system = StreamingSystem(small_config(), trace=trace)
        system.run()
        ladder = system.ladder
        for event in trace.of_kind("admission"):
            total = sum(
                ladder.offer_units(system.peers[pid].peer_class)
                for pid in event["suppliers"]
            )
            assert total == ladder.full_rate_units

    def test_rejections_backoff_exponentially(self):
        trace = TraceRecorder()
        system = StreamingSystem(small_config(), trace=trace)
        system.run()
        rejections = trace.of_kind("rejection")
        assert rejections, "a tiny seed population must cause rejections"
        for event in rejections:
            expected = 600.0 * 2.0 ** (event["rejections"] - 1)
            assert event["backoff_seconds"] == expected

    def test_ndac_never_elevates_or_reminds(self):
        trace = TraceRecorder()
        system = StreamingSystem(small_config(protocol="ndac"), trace=trace)
        metrics = system.run()
        assert trace.count("idle_elevation") == 0
        assert sum(metrics.reminders_left.values()) == 0

    def test_dac_leaves_reminders_under_contention(self):
        system = StreamingSystem(small_config())
        metrics = system.run()
        assert sum(metrics.reminders_left.values()) > 0

    def test_down_probability_slows_admission(self):
        healthy = StreamingSystem(small_config()).run()
        flaky = StreamingSystem(small_config(down_probability=0.5)).run()
        assert sum(flaky.rejections.values()) > sum(healthy.rejections.values())

    def test_no_elevation_policy_arms_no_timers(self):
        trace = TraceRecorder()
        system = StreamingSystem(
            small_config(protocol="dac-no-elevation"), trace=trace
        )
        system.run()
        assert trace.count("idle_elevation") == 0

    def test_idle_elevation_happens_for_dac(self):
        trace = TraceRecorder()
        system = StreamingSystem(small_config(), trace=trace)
        system.run()
        assert trace.count("idle_elevation") > 0


class TestDifferentiation:
    def test_higher_class_admitted_with_fewer_rejections(self):
        config = small_config(
            requesting_peers={1: 40, 2: 40, 3: 160, 4: 160},
            seed_suppliers={1: 8},
        )
        metrics = StreamingSystem(config).run()
        rejections = metrics.mean_rejections_before_admission()
        assert rejections[1] < rejections[4]

    def test_favored_series_relaxes_to_bottom_class(self):
        metrics = StreamingSystem(small_config()).run()
        # By the end of the run every supplier favors everyone (paper Fig 7).
        final = metrics.favored_series[1][-1].value
        assert final == pytest.approx(4.0, abs=0.01)
