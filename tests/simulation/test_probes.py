"""Unit tests for the composable metrics pipeline and its probes."""

import math

import pytest

from repro.core.capacity import CapacityLedger
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import MetricsCollector
from repro.simulation.probes import (
    DEFAULT_PROBES,
    PROBE_NAMES,
    MetricsPipeline,
    validate_probes,
)
from repro.simulation.runner import run_simulation
from repro.simulation.system import StreamingSystem


class TestSubscriptions:
    def test_default_subscribes_the_paper_evaluation(self, ladder):
        pipeline = MetricsPipeline(ladder)
        assert set(pipeline.probes) == set(DEFAULT_PROBES)
        # the lifecycle-extension continuity probe is opt-in, not default
        assert set(PROBE_NAMES) == set(DEFAULT_PROBES) | {"continuity"}

    def test_subset_subscription(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("capacity",))
        assert set(pipeline.probes) == {"capacity"}
        assert pipeline.wants_capacity_samples
        assert not pipeline.wants_rate_samples
        assert not pipeline.wants_favored_samples

    def test_unknown_probe_rejected(self, ladder):
        with pytest.raises(ConfigurationError):
            MetricsPipeline(ladder, probes=("capacity", "nonexistent"))

    def test_duplicate_probe_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_probes(("capacity", "capacity"))

    def test_config_validates_probes(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(probes=("nonexistent",))
        config = SimulationConfig(probes=["capacity", "table1"])
        assert config.probes == ("capacity", "table1")  # normalized to tuple

    def test_config_validates_kernel(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(kernel="fibonacci")


class TestUnsubscribedDefaults:
    """Unsubscribed probes read as empty series / NaN means, never KeyError."""

    def test_series_read_empty(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("table1",))
        assert pipeline.capacity_series == []
        assert pipeline.favored_series == {c: [] for c in ladder.classes}
        assert pipeline.final_capacity() == 0.0

    def test_means_read_nan(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("capacity",))
        pipeline.on_first_request(1)
        pipeline.on_admission(1, 2, 4, 4, 60.0)
        assert all(math.isnan(v) for v in pipeline.mean_waiting_seconds().values())
        assert all(
            math.isnan(v)
            for v in pipeline.mean_rejections_before_admission().values()
        )
        # admission rate derives from the always-on counters
        assert pipeline.admission_rate_percent()[1] == 100.0

    def test_to_dict_key_set_is_subscription_independent(self, ladder):
        full = MetricsCollector(ladder).to_dict()
        subset = MetricsPipeline(ladder, probes=("capacity",)).to_dict()
        assert set(full) == set(subset)

    def test_unsubscribed_accumulators_read_zero(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("capacity",))
        pipeline.on_admission(1, 2, 4, 4, 60.0)
        assert pipeline.waiting_seconds_sum == {c: 0.0 for c in ladder.classes}
        assert pipeline.rejections_before_admission_sum == {
            c: 0 for c in ladder.classes
        }


class TestDispatch:
    def test_only_subscribed_accumulators_advance(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("waiting", "table1"))
        pipeline.on_first_request(2)
        pipeline.on_admission(2, 3, 4, 4, 1800.0)
        assert pipeline.mean_waiting_seconds()[2] == 1800.0
        assert pipeline.mean_rejections_before_admission()[2] == 3.0
        assert all(
            math.isnan(v) for v in pipeline.mean_buffering_delay_slots().values()
        )

    def test_capacity_probe_samples_ledger(self, ladder):
        pipeline = MetricsPipeline(ladder, probes=("capacity",))
        ledger = CapacityLedger(ladder)
        ledger.add_supplier(1)
        pipeline.sample_capacity(3600.0, ledger)
        assert [(p.hour, p.value) for p in pipeline.capacity_series] == [(1.0, 0.0)]
        assert pipeline.supplier_count_series[-1].value == 1.0

    def test_full_pipeline_matches_monolithic_collector_shape(self, ladder):
        collector = MetricsCollector(ladder)
        collector.on_first_request(1)
        collector.on_retry(1)
        collector.on_rejection(1)
        collector.on_reminder(1)
        collector.on_admission(1, 1, 2, 2, 600.0)
        collector.sample_rates(3600.0)
        dump = collector.to_dict()
        assert dump["requests"][1] == 2
        assert dump["admission_rate_series"][1] == [(1.0, 100.0)]
        assert dump["mean_waiting_seconds"][1] == 600.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def full_run(self):
        return run_simulation(SimulationConfig().scaled(0.004))

    def test_subscribed_series_match_the_full_run(self, full_run):
        """A probe subset records exactly the full pipeline's values for
        the subscribed artifacts — subscription changes cost, not data."""
        config = SimulationConfig(
            probes=("capacity", "admission_rate", "overall_admission")
        ).scaled(0.004)
        result = run_simulation(config)
        full = full_run.metrics.to_dict()
        subset = result.metrics.to_dict()
        for key in (
            "capacity_series",
            "admission_rate_series",
            "overall_admission_rate_series",
            "first_requests",
            "admitted",
            "rejections",
        ):
            assert subset[key] == full[key]
        assert subset["favored_series"] == {c: [] for c in (1, 2, 3, 4)}

    def test_unsubscribed_samplers_schedule_no_events(self, full_run):
        config = SimulationConfig(probes=("table1",)).scaled(0.004)
        result = run_simulation(config)
        # no capacity/rate/favored sampler events at all
        assert result.events_processed < full_run.events_processed

    def test_favored_sampler_skipped_without_favored_probe(self):
        config = SimulationConfig(probes=("capacity",)).scaled(0.004)
        system = StreamingSystem(config)
        metrics = system.run()
        assert metrics.favored_series == {c: [] for c in (1, 2, 3, 4)}

    def test_population_scale_scenarios_subscribe_the_fast_path(self):
        for name in ("metropolis_100k", "flash_crowd_100k", "diurnal_week"):
            config = get_scenario(name).build_config(scale=0.002)
            assert config.kernel == "calendar"
            assert config.probes is not None
            assert "favored" not in config.probes
            assert config.track_messages is False
            result = run_simulation(config)
            assert result.metrics.final_capacity() >= 0.0
            assert result.message_stats is None
