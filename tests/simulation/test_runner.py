"""Unit tests for the experiment runner helpers."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.runner import (
    compare_protocols,
    run_simulation,
    sweep_parameter,
)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        seed_suppliers={1: 4},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=1,
        master_seed=3,
    )


class TestRunSimulation:
    def test_result_carries_config_and_metrics(self, config):
        result = run_simulation(config)
        assert result.config is config
        assert result.events_processed > 0
        assert result.wall_seconds > 0
        assert result.message_stats["messages"] > 0

    def test_max_capacity_accounts_whole_population(self, config):
        result = run_simulation(config)
        # 14 class-1 + 10 class-2 + 40 class-3 + 40 class-4
        assert result.max_capacity == (14 * 8 + 10 * 4 + 40 * 2 + 40) // 16

    def test_capacity_fraction_in_unit_interval(self, config):
        result = run_simulation(config)
        assert 0.0 < result.capacity_fraction_of_max <= 1.0

    def test_summary_mentions_protocol_and_pattern(self, config):
        text = run_simulation(config).summary()
        assert "dac" in text and "pattern 1" in text


class TestCompareProtocols:
    def test_runs_both_protocols(self, config):
        results = compare_protocols(config)
        assert set(results) == {"dac", "ndac"}
        assert results["dac"].config.protocol == "dac"
        assert results["ndac"].config.protocol == "ndac"

    def test_custom_protocol_list(self, config):
        results = compare_protocols(config, protocols=("dac", "dac-no-reminder"))
        assert set(results) == {"dac", "dac-no-reminder"}


class TestSweep:
    def test_sweep_replaces_parameter(self, config):
        results = sweep_parameter(config, "probe_candidates", [4, 8])
        assert results[4].config.probe_candidates == 4
        assert results[8].config.probe_candidates == 8

    def test_sweep_keys_preserve_values(self, config):
        results = sweep_parameter(config, "e_bkf", [1.0, 2.0])
        assert list(results) == [1.0, 2.0]
