"""Event-kernel unit tests and the cross-kernel determinism parity suite."""

import json
import random

import pytest

from repro.orchestration.runspec import RunSpec
from repro.orchestration.study import RunRecord
from repro.scenarios import all_scenarios, get_scenario
from repro.simulation.engine import Simulator
from repro.simulation.kernel import (
    KERNEL_NAMES,
    AutoCalendarKernel,
    CalendarKernel,
    EventKernel,
    HeapKernel,
    make_kernel,
)
from repro.simulation.runner import run_simulation
from repro.errors import ConfigurationError


class TestMakeKernel:
    def test_known_names(self):
        assert set(KERNEL_NAMES) == {"heap", "calendar", "calendar-auto"}
        assert isinstance(make_kernel("heap"), HeapKernel)
        assert isinstance(make_kernel("calendar"), CalendarKernel)
        assert isinstance(make_kernel("calendar-auto"), AutoCalendarKernel)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_kernel("fibonacci")

    def test_kernels_satisfy_the_protocol(self):
        assert isinstance(make_kernel("heap"), EventKernel)
        assert isinstance(make_kernel("calendar"), EventKernel)

    def test_invalid_calendar_width_rejected(self):
        with pytest.raises(ConfigurationError):
            CalendarKernel(bucket_seconds=0.0)

    def test_simulator_accepts_kernel_instances(self):
        sim = Simulator(kernel=CalendarKernel(bucket_seconds=10.0))
        fired = []
        sim.schedule_at(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]


@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
class TestKernelContract:
    """Both kernels honour the (time, sequence) dispatch contract."""

    def test_time_order(self, kernel_name):
        sim = Simulator(kernel=kernel_name)
        fired = []
        sim.schedule_at(500.0, fired.append, "late")
        sim.schedule_at(1.0, fired.append, "early")
        sim.schedule_at(250.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fifo(self, kernel_name):
        sim = Simulator(kernel=kernel_name)
        fired = []
        for label in "abcde":
            sim.schedule_at(130.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_cancellation_and_live_count(self, kernel_name):
        sim = Simulator(kernel=kernel_name)
        handles = [sim.schedule_at(float(i), lambda _: None, None) for i in range(10)]
        for handle in handles[:4]:
            sim.cancel(handle)
        assert sim.pending == 6
        sim.cancel(handles[0])  # double cancel is a no-op
        assert sim.pending == 6
        sim.run()
        assert sim.events_processed == 6
        assert sim.pending == 0

    def test_run_until_boundary(self, kernel_name):
        sim = Simulator(kernel=kernel_name)
        fired = []
        sim.schedule_at(100.0, fired.append, "in")
        sim.schedule_at(300.0, fired.append, "edge")
        sim.schedule_at(301.0, fired.append, "out")
        sim.run(until=300.0)
        assert fired == ["in", "edge"]
        assert sim.now == 300.0
        assert sim.pending == 1
        sim.run()
        assert fired == ["in", "edge", "out"]

    def test_events_scheduled_during_run(self, kernel_name):
        sim = Simulator(kernel=kernel_name)
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_in(40.0, chain, n + 1)

        sim.schedule_at(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 120.0


class TestCalendarInternals:
    def test_buckets_are_retired_and_recreated(self):
        kernel = CalendarKernel(bucket_seconds=10.0)
        sim = Simulator(kernel=kernel)
        fired = []
        sim.schedule_at(5.0, fired.append, "first")
        sim.run()
        # bucket 0 drained; schedule into it again at a later time offset
        sim.schedule_at(7.0, fired.append, "second")
        sim.schedule_at(25.0, fired.append, "third")
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_compaction_rebuilds_buckets(self):
        kernel = CalendarKernel(bucket_seconds=10.0)
        sim = Simulator(kernel=kernel)
        live = [sim.schedule_at(float(i), lambda _: None, None) for i in range(40)]
        dead = [
            sim.schedule_at(1000.0 + i, lambda _: None, None) for i in range(42)
        ]
        for handle in dead:
            sim.cancel(handle)
        # the graveyard was dropped: only live entries remain stored
        stored = sum(len(bucket) for bucket in kernel._buckets.values())
        assert stored == len(live)
        assert sim.pending == len(live)
        sim.run()
        assert sim.events_processed == len(live)


class TestAutoCalendarCalibration:
    def test_width_is_learned_from_the_staged_entries(self):
        kernel = AutoCalendarKernel()
        sim = Simulator(kernel=kernel)
        fired = []
        # 101 events over 1000 s: span/count * 16 = 1000/101 * 16 ≈ 158.4
        for i in range(101):
            sim.schedule_at(i * 10.0, fired.append, i)
        assert kernel._staged is not None  # still staging: nothing popped
        sim.run()
        assert kernel._staged is None
        assert kernel._width == pytest.approx(1000.0 / 101.0 * 16.0)
        assert fired == list(range(101))

    def test_width_is_clamped(self):
        narrow = AutoCalendarKernel()
        sim = Simulator(kernel=narrow)
        for i in range(100):
            sim.schedule_at(i * 0.001, lambda _: None, None)
        sim.run()
        assert narrow._width == AutoCalendarKernel.MIN_BUCKET_SECONDS

        wide = AutoCalendarKernel()
        sim = Simulator(kernel=wide)
        sim.schedule_at(0.0, lambda _: None, None)
        sim.schedule_at(10_000_000.0, lambda _: None, None)
        sim.run()
        assert wide._width == AutoCalendarKernel.MAX_BUCKET_SECONDS

    def test_empty_first_pop_keeps_the_default_width(self):
        kernel = AutoCalendarKernel()
        sim = Simulator(kernel=kernel)
        sim.run()  # first pop with nothing staged
        assert kernel._staged is None
        assert kernel._width == CalendarKernel.DEFAULT_BUCKET_SECONDS
        # the kernel keeps working after an empty calibration
        fired = []
        sim.schedule_at(5.0, fired.append, "later")
        sim.run()
        assert fired == ["later"]

    def test_cancellation_during_staging(self):
        kernel = AutoCalendarKernel()
        sim = Simulator(kernel=kernel)
        fired = []
        handles = [sim.schedule_at(float(i), fired.append, i) for i in range(10)]
        for handle in handles[:4]:
            sim.cancel(handle)
        sim.cancel(handles[0])  # double cancel is a no-op while staging
        assert sim.pending == 6
        sim.run()
        assert fired == list(range(4, 10))
        # cancelled staged entries never entered the buckets
        assert kernel._dead == 0


class TestCrossKernelEquivalence:
    """Randomized schedule/cancel workloads fire identically on all kernels."""

    def test_random_workload_parity(self):
        def execute(kernel_name: str) -> list[tuple[float, int]]:
            rng = random.Random(42)
            sim = Simulator(kernel=kernel_name)
            fired: list[tuple[float, int]] = []
            handles = []
            for i in range(500):
                time = round(rng.uniform(0.0, 5000.0), 3)
                handles.append(sim.schedule_at(time, fired.append, (time, i)))
            for i in range(0, 500, 7):
                sim.cancel(handles[i])
            # interleave: drain half, schedule more, drain the rest
            sim.run(until=2500.0)
            for i in range(200):
                time = round(sim.now + rng.uniform(0.0, 2500.0), 3)
                sim.schedule_at(time, fired.append, (time, 500 + i))
            sim.run()
            return fired

        baseline = execute("heap")
        for kernel_name in KERNEL_NAMES:
            assert execute(kernel_name) == baseline


@pytest.mark.parametrize("scenario_name", ["quickstart", "heavy_churn"])
def test_full_simulation_parity_across_kernels(scenario_name):
    """HeapKernel and CalendarKernel produce bit-identical runs.

    The acceptance bar of the kernel seam: same config (quickstart and the
    churn workload, which exercises departure/rejoin timers) → identical
    metrics payloads, event counts and message statistics under every
    kernel; only wall time may differ.
    """
    config = get_scenario(scenario_name).build_config(scale=0.01)
    reference = run_simulation(config.replace(kernel="heap"))
    reference_dump = json.dumps(reference.metrics.to_dict(), sort_keys=True)
    for kernel_name in KERNEL_NAMES:
        result = run_simulation(config.replace(kernel=kernel_name))
        # json text comparison keeps NaN means comparable (NaN != NaN)
        assert json.dumps(result.metrics.to_dict(), sort_keys=True) == reference_dump
        assert result.events_processed == reference.events_processed
        assert result.message_stats == reference.message_stats


def test_all_builtin_scenarios_produce_identical_records_across_kernels():
    """Bit-identical RunRecords (up to wall time) on every builtin workload.

    Record fingerprints cover the full serialized payload minus wall time;
    the kernel field itself is normalized out (it is provenance, not a
    measurement — and config hashes already exclude it, so both kernels'
    records share one spec hash).
    """
    for scenario in all_scenarios():
        config = scenario.build_config(scale=0.004)
        fingerprints = set()
        hashes = set()
        for kernel_name in KERNEL_NAMES:
            run_config = config.replace(kernel=kernel_name)
            spec = RunSpec(config=run_config, scenario=scenario.name)
            record = RunRecord.from_result(spec, run_simulation(run_config))
            normalized = record.to_dict()
            del normalized["wall_seconds"]
            normalized["config"].pop("kernel")
            fingerprints.add(repr(sorted(normalized.items(), key=lambda kv: kv[0])))
            hashes.add(spec.spec_hash)
        assert len(fingerprints) == 1, f"kernel-dependent record in {scenario.name}"
        assert len(hashes) == 1, f"kernel leaked into spec hash in {scenario.name}"
