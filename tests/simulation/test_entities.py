"""Unit tests for per-peer simulation state."""

import pytest

from repro.core.model import ClassLadder, PeerRole
from repro.errors import SimulationError
from repro.protocols.dac import DacPolicy
from repro.simulation.entities import SimPeer


class TestSimPeer:
    def test_seed_starts_as_supplier(self):
        peer = SimPeer(0, 1, is_seed=True)
        assert peer.role is PeerRole.SUPPLYING
        assert peer.is_supplier

    def test_requester_starts_without_admission_state(self):
        peer = SimPeer(1, 3)
        assert peer.role is PeerRole.REQUESTING
        assert peer.admission is None
        assert peer.rejections == 0

    def test_waiting_time_none_until_admitted(self):
        peer = SimPeer(1, 3)
        assert peer.waiting_time is None
        peer.first_request_time = 100.0
        assert peer.waiting_time is None
        peer.admitted_time = 500.0
        assert peer.waiting_time == 400.0

    def test_promote_attaches_state(self, ladder):
        peer = SimPeer(1, 2)
        state = DacPolicy().make_supplier_state(2, ladder)
        peer.promote(state)
        assert peer.is_supplier
        assert peer.admission is state

    def test_double_promotion_rejected(self, ladder):
        peer = SimPeer(1, 2)
        peer.promote(DacPolicy().make_supplier_state(2, ladder))
        with pytest.raises(SimulationError):
            peer.promote(DacPolicy().make_supplier_state(2, ladder))

    def test_idle_generation_bumps(self):
        peer = SimPeer(1, 2)
        first = peer.idle_timer_generation
        assert peer.bump_idle_generation() == first + 1
        assert peer.idle_timer_generation == first + 1

    def test_slots_prevent_arbitrary_attributes(self):
        peer = SimPeer(1, 2)
        with pytest.raises(AttributeError):
            peer.some_random_field = 1
