"""Behavioral tests for the supplier-churn extension (graceful departures)."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder
from repro.simulation.validation import audit_system

HOUR = 3600.0


def churn_config(**overrides):
    defaults = dict(
        seed_suppliers={1: 6},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=1,
        master_seed=21,
        supplier_mean_online_seconds=12 * HOUR,
        supplier_mean_offline_seconds=4 * HOUR,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_churn_off_by_default(self):
        assert SimulationConfig().supplier_mean_online_seconds is None

    def test_invalid_durations_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(supplier_mean_online_seconds=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(supplier_mean_offline_seconds=-1.0)


class TestDepartureDynamics:
    @pytest.fixture(scope="class")
    def run(self):
        trace = TraceRecorder()
        system = StreamingSystem(churn_config(), trace=trace)
        metrics = system.run()
        return system, metrics, trace

    def test_departures_happen_and_are_counted(self, run):
        system, metrics, trace = run
        departures = sum(metrics.supplier_departures.values())
        assert departures > 0
        assert departures == trace.count("supplier_departed")

    def test_rejoins_happen(self, run):
        _system, metrics, trace = run
        rejoins = sum(metrics.supplier_rejoins.values())
        assert rejoins > 0
        assert rejoins == trace.count("supplier_rejoined")

    def test_ledger_matches_active_suppliers(self, run):
        system, _metrics, _trace = run
        active = [p for p in system.peers if p.is_active_supplier]
        assert system.ledger.num_suppliers == len(active)
        expected_units = sum(
            system.ladder.offer_units(p.peer_class) for p in active
        )
        assert system.ledger.total_units == expected_units

    def test_audit_still_clean_under_churn(self, run):
        system, _metrics, trace = run
        report = audit_system(system, trace)
        assert report.ok, report.summary()

    def test_capacity_series_can_dip(self, run):
        # With churn the capacity curve is no longer monotone.
        _system, metrics, _trace = run
        values = [p.value for p in metrics.capacity_series]
        dips = sum(1 for a, b in zip(values, values[1:]) if b < a)
        assert dips > 0

    def test_departures_are_graceful(self, run):
        # No supplier departs mid-session: every admission's suppliers were
        # active for the whole show time (checked by the T1 audit above);
        # additionally, departed peers are never probed (they are
        # unregistered), so no admission lists a departed supplier at its
        # admission time.
        system, _metrics, trace = run
        departures_by_peer: dict[int, list[float]] = {}
        for event in trace.of_kind("supplier_departed"):
            departures_by_peer.setdefault(event["peer"], []).append(event["t"])
        rejoins_by_peer: dict[int, list[float]] = {}
        for event in trace.of_kind("supplier_rejoined"):
            rejoins_by_peer.setdefault(event["peer"], []).append(event["t"])
        show = system.media.show_seconds
        for event in trace.of_kind("admission"):
            start = event["t"]
            for supplier_id in event["suppliers"]:
                for depart_time in departures_by_peer.get(supplier_id, []):
                    # a departure cannot fall strictly inside the session
                    assert not (start < depart_time < start + show - 1e-6)


class TestChurnCycle:
    """The full depart → rejoin → depart cycle and its timer hygiene."""

    def test_depart_rejoin_depart_cycles_complete(self):
        config = churn_config(
            supplier_mean_online_seconds=6 * HOUR,
            supplier_mean_offline_seconds=1 * HOUR,
        )
        trace = TraceRecorder()
        system = StreamingSystem(config, trace=trace)
        system.run()
        assert any(p.departures >= 2 for p in system.peers), (
            "expected at least one supplier to complete a full "
            "depart→rejoin→depart cycle at these churn rates"
        )
        # Per peer the trace must strictly alternate, starting with a
        # departure: a peer can never depart twice without rejoining.
        kinds_by_peer: dict[int, list[str]] = {}
        for event in trace.events:
            if event["kind"] in ("supplier_departed", "supplier_rejoined"):
                kinds_by_peer.setdefault(event["peer"], []).append(event["kind"])
        for kinds in kinds_by_peer.values():
            assert kinds[0] == "supplier_departed"
            for first, second in zip(kinds, kinds[1:]):
                assert first != second

    def test_busy_supplier_defers_departure_until_session_ends(self):
        # Natural departures are pushed far out; we drive the cycle by hand.
        config = churn_config(supplier_mean_online_seconds=10_000 * HOUR)
        system = StreamingSystem(config)
        seed = next(p for p in system.peers if p.is_seed)
        seed.admission.on_session_start()

        system.registry._on_departure(seed)
        assert not seed.departed, "a busy supplier must finish its session"

        seed.admission.on_session_end()
        retry = system.registry.DEPARTURE_RETRY_SECONDS
        system.sim.run(until=retry)
        assert seed.departed
        assert seed.departures == 1

    def test_stale_idle_timer_dropped_after_generation_bump(self):
        # Registration armed a T_out timer for each idle seed; a session
        # start/end cycle bumps the generation, so the original timer must
        # be a no-op when it fires (short T_out keeps arrivals out of the
        # window).
        config = churn_config(
            supplier_mean_online_seconds=10_000 * HOUR, t_out_seconds=600.0
        )
        system = StreamingSystem(config)
        seed = next(p for p in system.peers if p.is_seed)
        before = seed.admission.lowest_favored_class()

        seed.bump_idle_generation()  # what a session start does
        system.sim.run(until=config.t_out_seconds)
        assert seed.admission.lowest_favored_class() == before

    def test_rejoin_arms_fresh_idle_timer(self):
        # After depart → rejoin, the supplier elevates again from its own
        # re-armed timer (the pre-departure timer was invalidated).
        config = churn_config(
            supplier_mean_online_seconds=10_000 * HOUR, t_out_seconds=600.0
        )
        system = StreamingSystem(config)
        seed = next(p for p in system.peers if p.is_seed)
        before = seed.admission.lowest_favored_class()

        system.registry._on_departure(seed)
        assert seed.departed
        system.registry._on_rejoin(seed)
        assert not seed.departed
        system.sim.run(until=system.sim.now + config.t_out_seconds)
        assert seed.admission.lowest_favored_class() > before


class TestNoRejoin:
    def test_without_rejoin_population_only_shrinks(self):
        config = churn_config(
            suppliers_rejoin=False,
            supplier_mean_online_seconds=6 * HOUR,
        )
        system = StreamingSystem(config)
        metrics = system.run()
        assert sum(metrics.supplier_rejoins.values()) == 0
        assert sum(metrics.supplier_departures.values()) > 0

    def test_paper_mode_has_no_departures(self):
        config = churn_config(supplier_mean_online_seconds=None)
        system = StreamingSystem(config)
        metrics = system.run()
        assert sum(metrics.supplier_departures.values()) == 0
        values = [p.value for p in metrics.capacity_series]
        assert values == sorted(values)  # monotone without churn
