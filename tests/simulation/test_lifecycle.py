"""Session-lifecycle dynamics: models, mid-stream recovery, parity pins."""

import json
import hashlib

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import all_scenarios, get_scenario
from repro.simulation.config import SimulationConfig
from repro.simulation.kernel import KERNEL_NAMES
from repro.simulation.lifecycle import (
    LIFECYCLE_NAMES,
    RECOVERY_MODES,
    DiurnalLifecycle,
    FlashLifecycle,
    NoLifecycle,
    OnOffLifecycle,
    SessionDurationLifecycle,
    make_lifecycle,
)
from repro.simulation.churn import OnOffChurn
from repro.simulation.runner import run_simulation
from repro.simulation.system import StreamingSystem

HOUR = 3600.0


# ----------------------------------------------------------------------
# lifecycle models
# ----------------------------------------------------------------------
class TestNoLifecycle:
    def test_never_departs(self):
        model = NoLifecycle()
        assert model.next_departure(1, 0.0) is None
        assert model.next_return(1, 0.0) is None


class TestOnOffLifecycle:
    def test_departure_reads_the_churn_timeline(self):
        """The model departs exactly where OnOffChurn's timeline flips."""
        model = OnOffLifecycle(1000.0, 500.0, seed=7)
        timeline = OnOffChurn(1000.0, 500.0, seed=7)
        for peer in range(20):
            down, boundary = timeline.next_transition(peer, 0.0)
            departure = model.next_departure(peer, 0.0)
            if down:
                assert departure == 0.0  # down at activation: leave now
            else:
                assert departure == boundary

    def test_down_at_activation_departs_immediately(self):
        model = OnOffLifecycle(100.0, 1000.0, seed=3)
        timeline = OnOffChurn(100.0, 1000.0, seed=3)
        down_peers = [p for p in range(200) if timeline.next_transition(p, 0.0)[0]]
        assert down_peers, "seed 3 should start some peers down"
        peer = down_peers[0]
        assert model.next_departure(peer, 0.0) == 0.0
        # ... and returns at the end of the down interval
        assert model.next_return(peer, 0.0) > 0.0

    def test_deterministic_per_peer(self):
        a = OnOffLifecycle(800.0, 200.0, seed=11)
        b = OnOffLifecycle(800.0, 200.0, seed=11)
        # interleave queries differently; per-peer timelines must agree
        times_a = [a.next_departure(p, 0.0) for p in range(10)]
        times_b = [b.next_departure(p, 0.0) for p in reversed(range(10))]
        assert times_a == list(reversed(times_b))


class TestSessionDurationLifecycle:
    def test_sigma_zero_gives_fixed_durations(self):
        model = SessionDurationLifecycle(600.0, 60.0, sigma=0.0, seed=1)
        assert model.next_departure(4, 100.0) == pytest.approx(700.0)
        assert model.next_departure(4, 1000.0) == pytest.approx(1600.0)

    def test_draws_are_sequential_and_private_per_peer(self):
        a = SessionDurationLifecycle(600.0, 60.0, sigma=1.0, seed=5)
        b = SessionDurationLifecycle(600.0, 60.0, sigma=1.0, seed=5)
        # peer 1's second draw is unaffected by interleaved peer-2 traffic
        a.next_departure(1, 0.0)
        first = a.next_departure(1, 0.0)
        b.next_departure(1, 0.0)
        for _ in range(5):
            b.next_departure(2, 0.0)
        assert b.next_departure(1, 0.0) == first

    def test_heavy_tail_spread(self):
        model = SessionDurationLifecycle(600.0, 60.0, sigma=1.5, seed=9)
        durations = [model.next_departure(p, 0.0) for p in range(500)]
        assert min(durations) < 600.0 < max(durations)
        assert max(durations) > 10 * 600.0  # the tail is heavy


class TestDiurnalLifecycle:
    def test_night_draws_are_shorter(self):
        model = DiurnalLifecycle(10 * HOUR, HOUR, night_factor=0.1, seed=2)
        night = [model.next_departure(p, 0.0) - 0.0 for p in range(300)]
        day = [
            model.next_departure(p, 12 * HOUR) - 12 * HOUR
            for p in range(300, 600)
        ]
        assert sum(night) / len(night) < 0.3 * (sum(day) / len(day))

    def test_return_is_time_of_day_independent(self):
        model = DiurnalLifecycle(10 * HOUR, HOUR, night_factor=0.1, seed=2)
        assert model.next_return(7, 0.0) > 0.0


class TestFlashLifecycle:
    def test_selected_fraction_is_approximate(self):
        model = FlashLifecycle(100.0, 0.3, 60.0, seed=4)
        selected = sum(
            model.next_departure(p, 0.0) is not None for p in range(5000)
        )
        assert selected / 5000 == pytest.approx(0.3, abs=0.03)

    def test_departures_are_simultaneous_then_never(self):
        model = FlashLifecycle(100.0, 1.0, 60.0, seed=4)
        assert model.next_departure(1, 0.0) == 100.0
        # after the flash (e.g. a peer promoted later) nobody departs
        assert model.next_departure(1, 100.0) is None
        assert model.next_departure(1, 500.0) is None

    def test_zero_fraction_selects_nobody(self):
        model = FlashLifecycle(100.0, 0.0, 60.0, seed=4)
        assert all(model.next_departure(p, 0.0) is None for p in range(100))


class TestMakeLifecycle:
    @pytest.mark.parametrize(
        "name, model_type",
        [
            ("none", NoLifecycle),
            ("onoff", OnOffLifecycle),
            ("sessions", SessionDurationLifecycle),
            ("diurnal", DiurnalLifecycle),
            ("flash", FlashLifecycle),
        ],
    )
    def test_every_name_builds(self, name, model_type):
        config = SimulationConfig(lifecycle=name)
        assert isinstance(make_lifecycle(config), model_type)
        assert name in LIFECYCLE_NAMES


# ----------------------------------------------------------------------
# configuration validation
# ----------------------------------------------------------------------
class TestLifecycleConfig:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(lifecycle="meteor")

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(lifecycle="flash", lifecycle_recovery="pray")

    def test_recovery_modes_are_closed(self):
        assert set(RECOVERY_MODES) == {"resume", "restart", "abandon"}

    def test_mutually_exclusive_with_graceful_churn(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                lifecycle="onoff", supplier_mean_online_seconds=8 * HOUR
            )

    @pytest.mark.parametrize(
        "field, value",
        [
            ("lifecycle_mean_up_seconds", 0.0),
            ("lifecycle_mean_down_seconds", -1.0),
            ("lifecycle_sigma", -0.1),
            ("lifecycle_night_factor", 0.0),
            ("lifecycle_night_factor", 1.5),
            ("lifecycle_flash_at_seconds", -1.0),
            ("lifecycle_flash_fraction", 1.5),
        ],
    )
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(lifecycle="flash", **{field: value})

    def test_parameters_unchecked_when_disabled(self):
        # with lifecycle off the knobs are inert and may hold any value
        config = SimulationConfig(lifecycle_night_factor=99.0)
        assert config.lifecycle == "none"


# ----------------------------------------------------------------------
# integration: interruption, recovery, continuity probes
# ----------------------------------------------------------------------
def flash_config(**overrides):
    return get_scenario("flash_departure").build_config(scale=0.02, **overrides)


class TestMidStreamRecovery:
    def test_flash_interrupts_and_recovers(self):
        result = run_simulation(flash_config())
        metrics = result.metrics
        assert sum(metrics.supplier_departures.values()) > 0
        assert sum(metrics.supplier_rejoins.values()) > 0
        assert sum(metrics.interruptions.values()) > 0
        assert sum(metrics.recovered_sessions.values()) > 0
        assert sum(metrics.sessions_lost.values()) == 0
        # recovered stalls cost continuity somewhere
        continuity = [
            v for v in metrics.playback_continuity_index().values() if v == v
        ]
        assert continuity and min(continuity) < 1.0 <= max(continuity) + 1e-9
        latency = [
            v for v in metrics.mean_recovery_latency_seconds().values() if v == v
        ]
        assert latency and all(v > 0 for v in latency)

    def test_continuity_probe_rides_the_default_subscription(self):
        system = StreamingSystem(flash_config())
        assert "continuity" in system.metrics.probes
        payload = system.metrics.to_dict()
        for key in ("interruptions", "recovered_sessions", "sessions_lost",
                    "stall_seconds_sum", "playback_continuity_index",
                    "continuity_series"):
            assert key in payload

    def test_disabled_lifecycle_keeps_the_historical_export_schema(self):
        system = StreamingSystem(flash_config(lifecycle="none"))
        assert "continuity" not in system.metrics.probes
        assert "interruptions" not in system.metrics.to_dict()

    def test_abandon_loses_sessions_and_promotions(self):
        resume = run_simulation(flash_config()).metrics
        abandon = run_simulation(
            flash_config(lifecycle_recovery="abandon")
        ).metrics
        assert sum(abandon.sessions_lost.values()) > 0
        assert sum(abandon.recovered_sessions.values()) == 0
        # a lost requester never becomes a supplier, so capacity suffers
        assert abandon.final_capacity() <= resume.final_capacity()

    def test_restart_redoes_the_whole_transfer(self):
        restart = run_simulation(
            flash_config(lifecycle_recovery="restart")
        ).metrics
        assert sum(restart.recovered_sessions.values()) > 0
        assert sum(restart.sessions_lost.values()) == 0

    def test_ledger_matches_population_after_churning(self):
        system = StreamingSystem(flash_config())
        system.run()
        active = sum(1 for p in system.peers if p.is_active_supplier)
        assert system.ledger.num_suppliers == active

    def test_onoff_lifecycle_full_run(self):
        config = SimulationConfig(lifecycle="onoff").scaled(0.02)
        result = run_simulation(config)
        metrics = result.metrics
        assert sum(metrics.supplier_departures.values()) > 0
        # on/off churn interrupts continuously, not just once
        assert sum(metrics.interruptions.values()) > 0


@pytest.mark.parametrize("lifecycle", ["onoff", "sessions", "diurnal", "flash"])
def test_lifecycle_runs_are_kernel_invariant(lifecycle):
    """Every lifecycle model produces bit-identical runs on every kernel.

    The determinism contract extends to the new subsystem: departures,
    interruptions and recoveries are scheduled events drawn from per-peer
    RNGs, so dispatch-order-identical kernels must agree byte for byte.
    """
    config = SimulationConfig(lifecycle=lifecycle).scaled(0.02)
    reference = run_simulation(config.replace(kernel="heap"))
    reference_dump = json.dumps(reference.metrics.to_dict(), sort_keys=True)
    for kernel_name in KERNEL_NAMES:
        result = run_simulation(config.replace(kernel=kernel_name))
        assert json.dumps(result.metrics.to_dict(), sort_keys=True) == reference_dump
        assert result.events_processed == reference.events_processed
        assert result.message_stats == reference.message_stats


class TestRecordDuckCompatibility:
    """Study records expose the continuity payload like live metrics do."""

    def record_for(self, config):
        from repro.orchestration.runspec import RunSpec
        from repro.orchestration.study import RunRecord

        return RunRecord.from_result(
            RunSpec(config=config), run_simulation(config)
        )

    def test_lifecycle_record_round_trips_continuity(self):
        from repro.orchestration.study import RunRecord

        record = self.record_for(flash_config())
        live = record.result.metrics
        # serialize → deserialize, as a ResultStore would
        loaded = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert loaded.metrics.interruptions == live.interruptions
        assert loaded.metrics.recovered_sessions == live.recovered_sessions
        assert loaded.metrics.sessions_lost == live.sessions_lost
        index = loaded.metrics.playback_continuity_index()
        for c, value in live.playback_continuity_index().items():
            assert index[c] == value or (index[c] != index[c] and value != value)
        assert loaded.metrics.continuity_series == live.continuity_series

    def test_lifecycle_free_record_reads_like_an_unsubscribed_pipeline(self):
        record = self.record_for(flash_config(lifecycle="none"))
        metrics = record.metrics
        assert set(metrics.interruptions.values()) == {0}
        assert metrics.continuity_series == []
        index = metrics.playback_continuity_index()
        assert all(value != value for value in index.values())  # all NaN


# ----------------------------------------------------------------------
# parity: lifecycle-free behavior is pinned, byte for byte
# ----------------------------------------------------------------------
#: sha256 over (metrics payload, events processed, message stats) of every
#: pre-lifecycle builtin scenario at scale 0.004, captured on main before
#: the lifecycle subsystem landed.  A mismatch means the refactor changed
#: the behavior of a run that has lifecycle disabled — which must never
#: happen: with the default ``none`` model the subsystem schedules
#: nothing and draws nothing.
PRE_LIFECYCLE_FINGERPRINTS = {
    "asymmetric_classes": "b79d96dab53f9dc89fbf6a27b49f59da20466500ade433c419de9920b5062b87",
    "chord_overlay": "555ee8977e63e3ab0225062e982bee9309c69dfac5b9f973c98c576537056bdd",
    "constant": "d38416aa9e0d3155cc01bd0e610fdd0d03faf74c3f6c9a0ff038b8ba19ee19fa",
    "diurnal": "b591b1d28aaf1e1725ed160809286ae58f5742914e046bfcaf7e2b65957bc466",
    "diurnal_week": "30686793e48f23a6f90fd301d13aa8b34305678f7a8e32e8ad1085ecb2e220fd",
    "flaky_network": "e5d056e8e3c6bcbee4171f67cd885e30448233b3b025a20f90e3c1eea0666c3d",
    "flash_crowd": "00bbabcb63571be1c1d51ee6bc9d6aa0b40e2555292305c910c371597cedcdd9",
    "flash_crowd_100k": "25ed176ca74c3b7e64e829deb320c1fd02b28d48f485ec37f68e3007b85e05b4",
    "heavy_churn": "eee5ad5780772715afc7509701ebdc3ae63607f33c3c08f753278310a86a35ee",
    # captured when the scenario landed (array engine; identical under
    # engine="object" — the engines are parity-pinned)
    "megacity_1m": "2385dad303100f755dac0e1f1e69f6d42c5041db264492c03bbb171174a4850f",
    "metropolis_100k": "7312b0f76f7a9e711a059eaf7ffe79129b0a0b55b6d9429fdfb633c84c04ee2e",
    "paper_default": "e5d056e8e3c6bcbee4171f67cd885e30448233b3b025a20f90e3c1eea0666c3d",
    "quickstart": "e5d056e8e3c6bcbee4171f67cd885e30448233b3b025a20f90e3c1eea0666c3d",
    "shrinking_pool": "e20937f8ede75f4d848fc4e150777d6d70f738e9fc94ea9f632c4baaa6a07d6d",
    "sparse_seeds": "e5d056e8e3c6bcbee4171f67cd885e30448233b3b025a20f90e3c1eea0666c3d",
    "underreporting": "60c0005e6576f6db3871420dc6a8b91f8f4c6ba6da602345e136c8eb3980d524",
}


def behavior_fingerprint(result) -> str:
    payload = {
        "metrics": result.metrics.to_dict(),
        "events_processed": result.events_processed,
        "message_stats": result.message_stats,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def test_lifecycle_disabled_is_byte_identical_to_pre_lifecycle_main():
    """Every lifecycle-free builtin scenario matches its pinned fingerprint."""
    names = {s.name for s in all_scenarios() if s.lifecycle == "none"}
    assert names == set(PRE_LIFECYCLE_FINGERPRINTS), (
        "builtin scenario set changed; recapture the parity pins deliberately"
    )
    for scenario in all_scenarios():
        if scenario.lifecycle != "none":
            continue
        result = run_simulation(scenario.build_config(scale=0.004))
        assert behavior_fingerprint(result) == (
            PRE_LIFECYCLE_FINGERPRINTS[scenario.name]
        ), f"behavior drift in lifecycle-free scenario {scenario.name!r}"
