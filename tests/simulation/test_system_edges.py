"""Edge-case tests of the streaming system's less-travelled paths."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.system import StreamingSystem

HOUR = 3600.0


class TestScarceSupply:
    def test_single_seed_system_still_serves_everyone(self):
        # One class-1 seed offers R0/2 — no session can start until... it
        # can't: a lone seed can never aggregate R0, so nobody is ever
        # admitted and every peer retries until the horizon.
        config = SimulationConfig(
            seed_suppliers={1: 1},
            requesting_peers={1: 2, 2: 2, 3: 4, 4: 4},
            arrival_pattern=1,
            master_seed=3,
        )
        system = StreamingSystem(config)
        metrics = system.run()
        assert sum(metrics.admitted.values()) == 0
        assert sum(metrics.rejections.values()) > 0
        # capacity stays at the seed's floor(0.5) = 0
        assert metrics.final_capacity() == 0.0

    def test_two_seeds_bootstrap_the_whole_population(self):
        config = SimulationConfig(
            seed_suppliers={1: 2},
            requesting_peers={1: 2, 2: 2, 3: 4, 4: 4},
            arrival_pattern=1,
            master_seed=3,
        )
        metrics = StreamingSystem(config).run()
        assert sum(metrics.admitted.values()) == 12


class TestSmallM:
    def test_m1_can_never_admit_anyone(self):
        # A single candidate offers at most R0/2 < R0.
        config = SimulationConfig(
            seed_suppliers={1: 4},
            requesting_peers={1: 2, 2: 2, 3: 4, 4: 4},
            probe_candidates=1,
            arrival_pattern=1,
            master_seed=3,
        )
        metrics = StreamingSystem(config).run()
        assert sum(metrics.admitted.values()) == 0

    def test_m2_admits_only_via_class1_pairs(self):
        config = SimulationConfig(
            seed_suppliers={1: 6},
            requesting_peers={1: 3, 2: 3, 3: 3, 4: 3},
            probe_candidates=2,
            arrival_pattern=1,
            master_seed=3,
        )
        system = StreamingSystem(config)
        system.run()
        for peer in system.peers:
            if peer.num_suppliers_served_by is not None:
                assert peer.num_suppliers_served_by == 2


class TestHorizonEdges:
    def test_retries_beyond_horizon_are_not_scheduled(self):
        # With a huge backoff, the first rejection pushes the retry past
        # the horizon; the queue must drain without those events.
        config = SimulationConfig(
            seed_suppliers={1: 1},
            requesting_peers={1: 1, 2: 1, 3: 1, 4: 1},
            t_bkf_seconds=1000 * HOUR,
            arrival_pattern=1,
            master_seed=3,
        )
        system = StreamingSystem(config)
        system.run()
        assert system.sim.now <= config.horizon_seconds

    def test_sessions_straddling_horizon_do_not_promote(self):
        # A peer admitted within the last show time of the horizon has its
        # session-end event beyond the horizon: it is never promoted.
        config = SimulationConfig(
            seed_suppliers={1: 2},
            requesting_peers={1: 1, 2: 1, 3: 1, 4: 1},
            arrival_window_seconds=4 * HOUR,
            horizon_seconds=4 * HOUR + 1800.0,  # half a show past the window
            arrival_pattern=1,
            master_seed=3,
        )
        system = StreamingSystem(config)
        metrics = system.run()
        admitted = sum(metrics.admitted.values())
        promoted = sum(
            1 for p in system.peers if not p.is_seed and p.is_supplier
        )
        assert promoted <= admitted


class TestNoCandidates:
    def test_probe_with_no_registered_suppliers_rejects(self):
        # Force the situation by unregistering the seeds from the lookup.
        config = SimulationConfig(
            seed_suppliers={1: 2},
            requesting_peers={1: 1, 2: 1, 3: 1, 4: 1},
            arrival_pattern=1,
            master_seed=3,
        )
        system = StreamingSystem(config)
        for peer in system.peers:
            if peer.is_seed:
                system.lookup.unregister_supplier(
                    system.media.media_id, peer.peer_id
                )
        metrics = system.run()
        assert sum(metrics.admitted.values()) == 0
        assert sum(metrics.rejections.values()) > 0


class TestPolicyVariantsEndToEnd:
    @pytest.mark.parametrize(
        "protocol",
        ["dac-no-reminder", "dac-no-elevation", "dac-linear-elevation",
         "dac-generous-init"],
    )
    def test_every_variant_completes_and_serves(self, protocol):
        config = SimulationConfig(
            seed_suppliers={1: 4},
            requesting_peers={1: 5, 2: 5, 3: 20, 4: 20},
            arrival_pattern=1,
            protocol=protocol,
            master_seed=3,
        )
        metrics = StreamingSystem(config).run()
        assert sum(metrics.admitted.values()) == 50
