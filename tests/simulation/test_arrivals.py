"""Unit tests for the four arrival patterns (paper Section 5.1)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.simulation.arrivals import (
    arrivals_per_bin,
    generate_arrival_times,
    make_pattern,
)

HOUR = 3600.0
WINDOW = 72 * HOUR


@pytest.fixture(params=[1, 2, 3, 4])
def pattern(request):
    return make_pattern(request.param, WINDOW)


class TestPatternShapes:
    def test_density_integrates_to_one(self, pattern):
        # Riemann sum over fine steps.
        steps = 20_000
        dt = WINDOW / steps
        total = sum(pattern.density(i * dt) for i in range(steps)) * dt
        assert total == pytest.approx(1.0, rel=1e-3)

    def test_cumulative_monotone_and_normalized(self, pattern):
        previous = -1.0
        for i in range(0, 101):
            value = pattern.cumulative(WINDOW * i / 100)
            assert value >= previous
            previous = value
        assert pattern.cumulative(0.0) == 0.0
        assert pattern.cumulative(WINDOW) == pytest.approx(1.0)

    def test_quantile_inverts_cumulative(self, pattern):
        for fraction in (0.01, 0.25, 0.5, 0.9, 0.99):
            t = pattern.quantile(fraction)
            assert pattern.cumulative(t) == pytest.approx(fraction, abs=1e-6)

    def test_density_zero_outside_window(self, pattern):
        assert pattern.density(-1.0) == 0.0
        assert pattern.density(WINDOW + 1.0) == 0.0


class TestSpecificShapes:
    def test_pattern1_constant(self):
        pattern = make_pattern(1, WINDOW)
        values = {pattern.density(t) for t in (0.0, WINDOW / 3, WINDOW * 0.9)}
        assert len(values) == 1

    def test_pattern2_peaks_mid_window(self):
        pattern = make_pattern(2, WINDOW)
        mid = pattern.density(WINDOW / 2)
        assert mid > pattern.density(WINDOW / 10)
        assert mid > pattern.density(WINDOW * 0.9)
        assert mid == pytest.approx(2.0 / WINDOW)

    def test_pattern2_symmetric(self):
        pattern = make_pattern(2, WINDOW)
        for f in (0.1, 0.3, 0.45):
            assert pattern.density(WINDOW * f) == pytest.approx(
                pattern.density(WINDOW * (1 - f))
            )

    def test_pattern3_burst_then_constant(self):
        pattern = make_pattern(3, WINDOW)
        burst = pattern.density(HOUR)          # inside [0, 6h)
        tail = pattern.density(30 * HOUR)
        assert burst > 3 * tail
        # 40% of arrivals inside the first 6 hours
        assert pattern.cumulative(6 * HOUR) == pytest.approx(0.40)

    def test_pattern4_periodic_bursts(self):
        pattern = make_pattern(4, WINDOW)
        # bursts start every 12h and last 2h
        in_burst = pattern.density(12 * HOUR + HOUR)
        between = pattern.density(12 * HOUR + 5 * HOUR)
        assert in_burst > 3 * between
        # six equal bursts carry 60%: after one full cycle, 0.6/6 + 0.4/6
        assert pattern.cumulative(12 * HOUR) == pytest.approx(1.0 / 6.0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pattern(5, WINDOW)
        with pytest.raises(ConfigurationError):
            make_pattern(1, -1.0)


class TestGeneration:
    def test_deterministic_count_and_window(self, pattern):
        times = generate_arrival_times(pattern, 500)
        assert len(times) == 500
        assert all(0 <= t < WINDOW for t in times)
        assert times == sorted(times)

    def test_deterministic_is_reproducible(self, pattern):
        assert generate_arrival_times(pattern, 100) == generate_arrival_times(
            pattern, 100
        )

    def test_deterministic_matches_shape(self):
        pattern = make_pattern(3, WINDOW)
        times = generate_arrival_times(pattern, 1000)
        in_burst = sum(1 for t in times if t < 6 * HOUR)
        assert in_burst == pytest.approx(400, abs=2)

    def test_stochastic_count_and_window(self, pattern):
        rng = random.Random(3)
        times = generate_arrival_times(pattern, 500, deterministic=False, rng=rng)
        assert len(times) == 500
        assert all(0 <= t < WINDOW for t in times)

    def test_stochastic_needs_rng(self, pattern):
        with pytest.raises(ConfigurationError):
            generate_arrival_times(pattern, 10, deterministic=False)

    def test_stochastic_roughly_matches_shape(self):
        pattern = make_pattern(2, WINDOW)
        rng = random.Random(9)
        times = generate_arrival_times(pattern, 4000, deterministic=False, rng=rng)
        first_quarter = sum(1 for t in times if t < WINDOW / 4)
        middle_half = sum(1 for t in times if WINDOW / 4 <= t < 3 * WINDOW / 4)
        # triangle: 12.5% in the first quarter, 75% in the middle half
        assert first_quarter / 4000 == pytest.approx(0.125, abs=0.05)
        assert middle_half / 4000 == pytest.approx(0.75, abs=0.05)

    def test_zero_arrivals(self, pattern):
        assert generate_arrival_times(pattern, 0) == []

    def test_negative_arrivals_rejected(self, pattern):
        with pytest.raises(ConfigurationError):
            generate_arrival_times(pattern, -1)


class TestBinning:
    def test_bins_conserve_arrivals(self):
        pattern = make_pattern(4, WINDOW)
        times = generate_arrival_times(pattern, 777)
        bins = arrivals_per_bin(times, HOUR, WINDOW)
        assert sum(bins) == 777
        assert len(bins) == 72

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ConfigurationError):
            arrivals_per_bin([1.0], 0.0, 10.0)
