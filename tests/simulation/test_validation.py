"""Unit tests for the post-run invariant auditor."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.system import StreamingSystem
from repro.simulation.trace import TraceRecorder
from repro.simulation.validation import AuditReport, audit_system

HOUR = 3600.0


@pytest.fixture(scope="module")
def finished_system():
    config = SimulationConfig(
        seed_suppliers={1: 4},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=1,
        master_seed=11,
    )
    trace = TraceRecorder()
    system = StreamingSystem(config, trace=trace)
    system.run()
    return system, trace


class TestCleanRunPasses:
    def test_state_audit_clean(self, finished_system):
        system, _trace = finished_system
        report = audit_system(system)
        assert report.ok, report.summary()
        assert report.checks_run > 100

    def test_trace_audit_clean(self, finished_system):
        system, trace = finished_system
        report = audit_system(system, trace)
        assert report.ok, report.summary()

    def test_summary_mentions_checks(self, finished_system):
        system, trace = finished_system
        text = audit_system(system, trace).summary()
        assert "audit ok" in text

    def test_ndac_run_also_clean(self):
        config = SimulationConfig(
            seed_suppliers={1: 4},
            requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
            arrival_pattern=1,
            protocol="ndac",
            master_seed=11,
        )
        trace = TraceRecorder()
        system = StreamingSystem(config, trace=trace)
        system.run()
        assert audit_system(system, trace).ok


class TestViolationsDetected:
    def test_ledger_drift_detected(self, finished_system):
        system, _trace = finished_system
        system.ledger.total_units += 1
        report = audit_system(system)
        system.ledger.total_units -= 1  # restore for other tests
        assert not report.ok
        assert any(v.invariant == "S3" for v in report.violations)

    def test_theorem1_mismatch_detected(self, finished_system):
        system, _trace = finished_system
        victim = next(p for p in system.peers if p.buffering_delay_slots)
        original = victim.buffering_delay_slots
        victim.buffering_delay_slots = original + 1
        report = audit_system(system)
        victim.buffering_delay_slots = original
        assert any(v.invariant == "S4" for v in report.violations)

    def test_double_booked_supplier_detected(self, finished_system):
        system, _trace = finished_system
        trace = TraceRecorder()
        supplier_ids = [p.peer_id for p in system.peers if p.is_seed][:2]
        # Two overlapping admissions using the same suppliers.
        trace.record("admission", 100.0, peer=9, suppliers=supplier_ids)
        trace.record("admission", 200.0, peer=10, suppliers=supplier_ids)
        report = audit_system(system, trace)
        assert any(v.invariant == "T1" for v in report.violations)

    def test_under_provisioned_session_detected(self, finished_system):
        system, _trace = finished_system
        trace = TraceRecorder()
        seed = next(p for p in system.peers if p.is_seed)
        trace.record("admission", 100.0, peer=9, suppliers=[seed.peer_id])
        report = audit_system(system, trace)
        assert any(v.invariant == "T2" for v in report.violations)

    def test_wrong_backoff_detected(self, finished_system):
        system, _trace = finished_system
        trace = TraceRecorder()
        trace.record(
            "rejection", 50.0, peer=9, peer_class=3, rejections=2,
            backoff_seconds=999.0,
        )
        report = audit_system(system, trace)
        assert any(v.invariant == "T3" for v in report.violations)

    def test_time_travel_detected(self, finished_system):
        system, _trace = finished_system
        trace = TraceRecorder()
        trace.record("rejection", 50.0, peer=1, peer_class=3, rejections=1,
                     backoff_seconds=600.0)
        trace.record("rejection", 10.0, peer=2, peer_class=3, rejections=1,
                     backoff_seconds=600.0)
        report = audit_system(system, trace)
        assert any(v.invariant == "T4" for v in report.violations)


class TestReportMechanics:
    def test_empty_report_is_ok(self):
        assert AuditReport().ok

    def test_add_flips_ok(self):
        report = AuditReport()
        report.add("S1", "boom")
        assert not report.ok
        assert "boom" in report.summary()
