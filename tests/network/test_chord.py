"""Unit tests for the Chord DHT substrate."""

import random
from collections import Counter

import pytest

from repro.errors import LookupError_
from repro.network.chord import ChordRing, SupplierIndex, chord_id


@pytest.fixture
def ring():
    ring = ChordRing(bits=24)
    for peer_id in range(40):
        ring.join(peer_id)
    return ring


class TestIdentifiers:
    def test_chord_id_is_deterministic(self):
        assert chord_id("peer-1", 24) == chord_id("peer-1", 24)

    def test_chord_id_within_space(self):
        for name in ("a", "b", "video/17"):
            assert 0 <= chord_id(name, 16) < (1 << 16)


class TestRingStructure:
    def test_successor_predecessor_cycle(self, ring):
        nodes = ring.nodes
        for left, right in zip(nodes, nodes[1:] + nodes[:1]):
            assert left.successor is right
            assert right.predecessor is left

    def test_single_node_points_to_itself(self):
        ring = ChordRing(bits=16)
        node = ring.join(1)
        assert node.successor is node
        assert node.predecessor is node

    def test_join_keeps_ids_sorted(self, ring):
        ids = [node.node_id for node in ring.nodes]
        assert ids == sorted(ids)

    def test_leave_relinks_neighbors(self, ring):
        victim = ring.nodes[5]
        before_pred, before_succ = victim.predecessor, victim.successor
        ring.leave(victim)
        assert before_pred.successor is before_succ
        assert before_succ.predecessor is before_pred

    def test_leave_unknown_node_raises(self, ring):
        stranger = ring.nodes[0].__class__(node_id=999_999_999, peer_id=-1)
        with pytest.raises(LookupError_):
            ring.leave(stranger)


class TestRoutingAndStorage:
    def test_put_get_roundtrip(self, ring):
        ring.put("hello", 42)
        assert ring.get("hello") == [42]

    def test_get_missing_returns_empty(self, ring):
        assert ring.get("nothing-here") == []

    def test_delete_removes_entry(self, ring):
        ring.put("k", 1)
        assert ring.delete("k") is True
        assert ring.get("k") == []
        assert ring.delete("k") is False

    def test_find_successor_agrees_from_any_start(self, ring):
        key = chord_id("some-key", ring.bits)
        owners = {ring.find_successor(key, start=node).node_id for node in ring.nodes}
        assert len(owners) == 1

    def test_keys_stored_at_their_successor(self, ring):
        for name in ("a", "b", "c", "d"):
            ring.put(name, name)
            key = chord_id(name, ring.bits)
            owner = ring.find_successor(key)
            assert any(
                entry_name == name
                for entries in owner.storage.values()
                for entry_name, _v in entries
            )

    def test_lookup_hops_logarithmic(self, ring):
        rng = random.Random(3)
        for _ in range(200):
            ring.find_successor(rng.randrange(ring.modulus))
        # 40 nodes -> log2(40) ~ 5.3; allow a factor of 2 of slack.
        assert ring.mean_lookup_hops < 11

    def test_keys_move_on_join(self):
        ring = ChordRing(bits=20)
        ring.join(0)
        for i in range(30):
            ring.put(f"key-{i}", i)
        for peer_id in range(1, 10):
            ring.join(peer_id)
        # Every key is still retrievable and owned by its successor.
        for i in range(30):
            assert ring.get(f"key-{i}") == [i]

    def test_keys_move_on_leave(self, ring):
        for i in range(30):
            ring.put(f"key-{i}", i)
        for victim in list(ring.nodes)[::4]:
            ring.leave(victim)
        for i in range(30):
            assert ring.get(f"key-{i}") == [i]

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(LookupError_):
            ChordRing().find_successor(5)


class TestSupplierIndex:
    @pytest.fixture
    def index(self, ring):
        index = SupplierIndex(ring, "video")
        for peer_id in range(100, 160):
            index.register(peer_id, 1 + peer_id % 4)
        return index

    def test_register_and_count(self, index):
        assert index.num_suppliers == 60

    def test_unregister(self, index):
        index.unregister(100)
        assert index.num_suppliers == 59
        with pytest.raises(LookupError_):
            index.unregister(100)

    def test_sample_returns_distinct_known_suppliers(self, index):
        rng = random.Random(11)
        sample = index.sample_candidates(8, rng)
        assert len(sample) == 8
        ids = [pid for pid, _cls in sample]
        assert len(set(ids)) == 8
        assert all(100 <= pid < 160 for pid in ids)

    def test_sample_more_than_population_returns_all(self, index):
        sample = index.sample_candidates(500, random.Random(2))
        assert len(sample) == 60

    def test_sample_of_empty_index(self, ring):
        index = SupplierIndex(ring, "empty")
        assert index.sample_candidates(4, random.Random(1)) == []

    def test_sampling_covers_population_broadly(self, index):
        rng = random.Random(1)
        counts = Counter()
        for _ in range(600):
            for pid, _cls in index.sample_candidates(8, rng):
                counts[pid] += 1
        # All 60 suppliers should be reachable by sampling.
        assert len(counts) == 60
        # No supplier should dominate: max count within 6x of the mean.
        mean = sum(counts.values()) / 60
        assert max(counts.values()) < 6 * mean
