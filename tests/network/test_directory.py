"""Unit tests for the Napster-style central directory."""

import random
from collections import Counter

import pytest

from repro.errors import LookupError_
from repro.network.directory import CentralDirectory


@pytest.fixture
def directory():
    d = CentralDirectory()
    for peer_id in range(10):
        d.register("video", peer_id, 1 + peer_id % 4)
    return d


class TestRegistration:
    def test_register_and_count(self, directory):
        assert directory.num_suppliers("video") == 10
        assert directory.num_suppliers("other") == 0

    def test_reregistration_is_idempotent(self, directory):
        directory.register("video", 3, 2)
        assert directory.num_suppliers("video") == 10

    def test_reregistration_updates_class(self, directory):
        directory.register("video", 3, 1)
        assert directory.class_of(3) == 1

    def test_unregister_removes(self, directory):
        directory.unregister("video", 4)
        assert directory.num_suppliers("video") == 9
        ids = {pid for pid, _cls in
               directory.sample_candidates("video", 20, random.Random(1))}
        assert 4 not in ids

    def test_unregister_unknown_raises(self, directory):
        with pytest.raises(LookupError_):
            directory.unregister("video", 999)

    def test_class_of_unknown_raises(self):
        with pytest.raises(LookupError_):
            CentralDirectory().class_of(1)


class TestSampling:
    def test_sample_size_and_distinctness(self, directory):
        rng = random.Random(7)
        sample = directory.sample_candidates("video", 4, rng)
        assert len(sample) == 4
        assert len({pid for pid, _cls in sample}) == 4

    def test_small_population_returns_everyone(self, directory):
        rng = random.Random(7)
        sample = directory.sample_candidates("video", 50, rng)
        assert len(sample) == 10

    def test_empty_media_returns_nothing(self):
        assert CentralDirectory().sample_candidates("x", 5, random.Random(1)) == []

    def test_classes_come_with_candidates(self, directory):
        for peer_id, peer_class in directory.sample_candidates(
            "video", 10, random.Random(3)
        ):
            assert peer_class == 1 + peer_id % 4

    def test_sampling_is_roughly_uniform(self):
        directory = CentralDirectory()
        for peer_id in range(20):
            directory.register("v", peer_id, 1)
        rng = random.Random(42)
        counts = Counter()
        for _ in range(4000):
            for peer_id, _cls in directory.sample_candidates("v", 4, rng):
                counts[peer_id] += 1
        # Each peer expected 4000*4/20 = 800 draws; allow generous slack.
        assert all(600 < counts[pid] < 1000 for pid in range(20))

    def test_unregister_keeps_sampling_uniform(self):
        # Swap-removal must not bias the remaining population.
        directory = CentralDirectory()
        for peer_id in range(12):
            directory.register("v", peer_id, 1)
        for peer_id in range(0, 12, 3):
            directory.unregister("v", peer_id)
        rng = random.Random(5)
        counts = Counter()
        for _ in range(2000):
            for peer_id, _cls in directory.sample_candidates("v", 2, rng):
                counts[peer_id] += 1
        remaining = [p for p in range(12) if p % 3 != 0]
        assert set(counts) == set(remaining)
        expected = 2000 * 2 / len(remaining)
        assert all(0.6 * expected < counts[p] < 1.4 * expected for p in remaining)
