"""Unit tests for control-message accounting."""

from repro.network.topology import ConstantLatency
from repro.network.transport import Transport


class TestTransport:
    def test_send_counts_messages_and_bytes(self):
        transport = Transport(latency=ConstantLatency(0.05))
        transport.send("probe", 1, 2)
        transport.send("probe", 1, 3)
        transport.send("grant", 2, 1)
        assert transport.stats.count_by_kind["probe"] == 2
        assert transport.stats.count_by_kind["grant"] == 1
        assert transport.stats.total_messages == 3
        assert transport.stats.bytes_by_kind["probe"] == 128  # 2 x 64 B

    def test_send_returns_latency(self):
        transport = Transport(latency=ConstantLatency(0.05))
        assert transport.send("probe", 1, 2) == 0.05

    def test_round_trip_charges_both_directions(self):
        transport = Transport(latency=ConstantLatency(0.05))
        rtt = transport.round_trip("probe", 1, 2)
        assert rtt == 0.10
        assert transport.stats.count_by_kind["probe"] == 1
        assert transport.stats.count_by_kind["probe_reply"] == 1

    def test_unknown_kind_uses_default_size(self):
        transport = Transport()
        transport.send("weird", 1, 2)
        assert transport.stats.bytes_by_kind["weird"] == 64

    def test_custom_sizes_override(self):
        transport = Transport(message_bytes={"probe": 100})
        transport.send("probe", 1, 2)
        assert transport.stats.bytes_by_kind["probe"] == 100

    def test_snapshot_and_reset(self):
        transport = Transport(latency=ConstantLatency(0.01))
        transport.send("probe", 1, 2)
        snap = transport.stats.snapshot()
        assert snap["messages"] == 1
        assert snap["latency_seconds"] == 0.01
        transport.reset()
        assert transport.stats.total_messages == 0
