"""Unit tests for the latency models."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import ConstantLatency, GeometricLatency


class TestConstantLatency:
    def test_constant_between_distinct_peers(self):
        model = ConstantLatency(0.03)
        assert model.one_way_seconds(1, 2) == 0.03
        assert model.one_way_seconds(2, 1) == 0.03

    def test_self_message_is_free(self):
        assert ConstantLatency(0.03).one_way_seconds(5, 5) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-0.1)


class TestGeometricLatency:
    def test_positions_deterministic_and_in_unit_square(self):
        model = GeometricLatency()
        for peer_id in (0, 1, 7, 10_000):
            x, y = model.position(peer_id)
            assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0
            assert model.position(peer_id) == (x, y)

    def test_latency_symmetric(self):
        model = GeometricLatency()
        assert model.one_way_seconds(3, 9) == model.one_way_seconds(9, 3)

    def test_latency_bounded(self):
        model = GeometricLatency(min_seconds=0.01, max_extra_seconds=0.08)
        for a, b in ((0, 1), (5, 900), (123, 456)):
            latency = model.one_way_seconds(a, b)
            assert 0.01 <= latency <= 0.09 + 1e-12

    def test_self_message_is_free(self):
        assert GeometricLatency().one_way_seconds(4, 4) == 0.0

    def test_distance_monotonicity(self):
        # Latency grows with Euclidean distance by construction.
        model = GeometricLatency(min_seconds=0.0, max_extra_seconds=1.0)
        pairs = [(1, 2), (3, 4), (5, 6), (7, 8)]

        def distance(a, b):
            (x1, y1), (x2, y2) = model.position(a), model.position(b)
            return math.hypot(x2 - x1, y2 - y1)

        ordered = sorted(pairs, key=lambda p: distance(*p))
        latencies = [model.one_way_seconds(*p) for p in ordered]
        assert latencies == sorted(latencies)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GeometricLatency(min_seconds=-1.0)
