"""Unit tests for the unified lookup adapters."""

import random

import pytest

from repro.network.lookup import ChordLookup, DirectoryLookup
from repro.network.transport import Transport


@pytest.fixture(params=["directory", "chord"])
def lookup(request):
    if request.param == "directory":
        return DirectoryLookup(transport=Transport())
    return ChordLookup(node_peer_ids=list(range(20)), transport=Transport())


class TestLookupAdapters:
    def test_register_then_sample(self, lookup):
        for peer_id in range(100, 130):
            lookup.register_supplier("video", peer_id, 1 + peer_id % 4)
        rng = random.Random(5)
        candidates = lookup.candidates("video", 8, requester_id=999, rng=rng)
        assert len(candidates) == 8
        assert all(100 <= pid < 130 for pid, _cls in candidates)
        assert all(cls == 1 + pid % 4 for pid, cls in candidates)

    def test_unregister_shrinks_population(self, lookup):
        for peer_id in range(100, 104):
            lookup.register_supplier("video", peer_id, 1)
        lookup.unregister_supplier("video", 100)
        rng = random.Random(5)
        candidates = lookup.candidates("video", 10, requester_id=999, rng=rng)
        assert {pid for pid, _cls in candidates} == {101, 102, 103}

    def test_transport_charged_for_operations(self, lookup):
        lookup.register_supplier("video", 100, 1)
        lookup.candidates("video", 4, requester_id=999, rng=random.Random(1))
        assert lookup.transport.stats.total_messages > 0

    def test_empty_media_yields_no_candidates(self, lookup):
        assert lookup.candidates("ghost", 4, 1, random.Random(1)) == []


class TestDirectorySpecifics:
    def test_directory_charges_one_round_trip_per_query(self):
        lookup = DirectoryLookup(transport=Transport())
        lookup.register_supplier("v", 1, 1)
        before = lookup.transport.stats.total_messages
        lookup.candidates("v", 4, requester_id=9, rng=random.Random(1))
        after = lookup.transport.stats.total_messages
        assert after - before == 2  # query + reply


class TestChordSpecifics:
    def test_chord_charges_hops(self):
        lookup = ChordLookup(node_peer_ids=list(range(30)), transport=Transport())
        for peer_id in range(100, 140):
            lookup.register_supplier("v", peer_id, 1)
        before = lookup.transport.stats.count_by_kind["dht_hop"]
        lookup.candidates("v", 8, requester_id=9, rng=random.Random(1))
        assert lookup.transport.stats.count_by_kind["dht_hop"] >= before
