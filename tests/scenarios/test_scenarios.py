"""Tests for the declarative scenario layer."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_for_pattern,
    scenario_names,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.system import StreamingSystem


class TestRegistry:
    def test_builtins_are_registered(self):
        names = scenario_names()
        for expected in (
            "paper_default",
            "constant",
            "flash_crowd",
            "diurnal",
            "heavy_churn",
            "asymmetric_classes",
            "underreporting",
            "chord_overlay",
            "flash_departure",
            "unstable_suppliers_100k",
            "diurnal_churn_week",
        ):
            assert expected in names

    def test_lifecycle_scenarios_select_their_models(self):
        assert get_scenario("flash_departure").lifecycle == "flash"
        assert get_scenario("unstable_suppliers_100k").lifecycle == "sessions"
        assert get_scenario("diurnal_churn_week").lifecycle == "diurnal"
        config = get_scenario("flash_departure").build_config(scale=0.02)
        assert config.lifecycle == "flash"
        assert config.lifecycle_recovery == "resume"
        # the 100k lifecycle scenario rides the fast path with continuity
        config = get_scenario("unstable_suppliers_100k").build_config(scale=0.01)
        assert config.kernel == "calendar"
        assert "continuity" in config.probes

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="paper_default"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("constant")
        with pytest.raises(ConfigurationError, match="already registered"):
            register(scenario)
        # explicit replacement is allowed and idempotent
        assert register(scenario, replace=True) is scenario

    def test_pattern_mapping_covers_all_four(self):
        for pattern_id in (1, 2, 3, 4):
            scenario = scenario_for_pattern(pattern_id)
            assert scenario.arrival_pattern == pattern_id
        with pytest.raises(ConfigurationError):
            scenario_for_pattern(5)

    def test_all_scenarios_sorted_and_described(self):
        scenarios = all_scenarios()
        assert [s.name for s in scenarios] == scenario_names()
        for scenario in scenarios:
            assert scenario.name in scenario.describe()


class TestBuildConfig:
    def test_paper_default_is_the_config_default(self):
        assert get_scenario("paper_default").build_config() == SimulationConfig()

    def test_scale_applies_before_overrides(self):
        config = get_scenario("paper_default").build_config(
            scale=0.01, probe_candidates=4
        )
        assert config.requesting_peers[1] == 50
        assert config.probe_candidates == 4

    def test_overrides_win_over_scenario_fields(self):
        config = get_scenario("chord_overlay").build_config(lookup="directory")
        assert config.lookup == "directory"

    def test_config_overrides_tuple_field(self):
        scenario = Scenario(
            name="short_show_for_test",
            description="a 10-minute clip",
            config_overrides=(("show_seconds", 600.0),),
        )
        assert scenario.build_config().show_seconds == 600.0

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="", description="x")
        with pytest.raises(ConfigurationError):
            Scenario(name="has space", description="x")
        with pytest.raises(ConfigurationError):
            Scenario(name="ok", description="")

    def test_scenarios_are_hashable(self):
        assert len({s for s in all_scenarios()}) == len(all_scenarios())


class TestRoundTrip:
    """Every registered scenario builds a valid config and simulates."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_builds_and_runs_ten_sim_seconds(self, name):
        config = get_scenario(name).build_config(scale=0.004)
        system = StreamingSystem(config)  # __post_init__ validated the config
        system.sim.run(until=10.0)
        assert system.sim.now == 10.0
        # t=0 samplers ran, so every scenario produces a live metrics feed
        assert system.metrics.capacity_series

    @pytest.mark.parametrize("name", scenario_names())
    def test_configs_are_deterministic(self, name):
        scenario = get_scenario(name)
        assert scenario.build_config(scale=0.01) == scenario.build_config(scale=0.01)
