"""Smoke tests: every example script runs clean at a tiny scale.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.  Each runs in a subprocess exactly as a
user would invoke it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def test_every_example_has_a_smoke_test():
    """Adding an example without wiring a test here is a failure, not drift."""
    source = Path(__file__).read_text(encoding="utf-8")
    for script in sorted(EXAMPLES_DIR.glob("*.py")):
        assert script.name in source, (
            f"examples/{script.name} is not exercised by tests/test_examples.py"
        )


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamplesRun:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "buffering delay: 4 slots" in result.stdout
        assert "capacity" in result.stdout

    def test_assignment_playground_default(self):
        result = run_example("assignment_playground.py")
        assert result.returncode == 0, result.stderr
        assert "buffering delay: 5 x dt" in result.stdout
        assert "buffering delay: 4 x dt" in result.stdout

    def test_assignment_playground_custom_classes(self):
        result = run_example("assignment_playground.py", "1", "3", "3", "3", "4", "4")
        assert result.returncode == 0, result.stderr

    def test_assignment_playground_rejects_infeasible(self):
        result = run_example("assignment_playground.py", "1", "2")
        assert result.returncode != 0

    def test_flash_crowd(self):
        result = run_example("flash_crowd.py", "--scale", "0.01")
        assert result.returncode == 0, result.stderr
        assert "Capacity race" in result.stdout

    def test_chord_lookup_demo(self):
        result = run_example("chord_lookup_demo.py")
        assert result.returncode == 0, result.stderr
        assert "mean routing hops" in result.stdout

    def test_incentive_study(self):
        result = run_example("incentive_study.py", "--scale", "0.01")
        assert result.returncode == 0, result.stderr
        assert "hiding bandwidth" in result.stdout.lower()

    def test_trace_analysis(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        result = run_example(
            "trace_analysis.py", "--scale", "0.01", "--save", str(trace_path)
        )
        assert result.returncode == 0, result.stderr
        assert "audit ok" in result.stdout
        assert trace_path.exists()

    def test_fluid_vs_simulation(self):
        result = run_example("fluid_vs_simulation.py", "--scale", "0.01")
        assert result.returncode == 0, result.stderr
        assert "fluid envelope" in result.stdout

    def test_lifecycle_recovery(self):
        result = run_example("lifecycle_recovery.py", "--scale", "0.02")
        assert result.returncode == 0, result.stderr
        assert "mid-stream blackout" in result.stdout.lower()
        assert "resume" in result.stdout

    def test_study_grid(self, tmp_path):
        out_dir = tmp_path / "study_out"
        result = run_example(
            "study_grid.py", "--scale", "0.004", "--seeds", "2",
            "--out", str(out_dir),
        )
        assert result.returncode == 0, result.stderr
        assert "identical records: True" in result.stdout
        assert (out_dir / "study.json").exists()
        assert (out_dir / "study.csv").exists()
