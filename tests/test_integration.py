"""End-to-end integration tests: the paper's qualitative claims hold.

These are the claims Section 5 makes about DAC_p2p vs NDAC_p2p, checked on
a scaled-down population (the dynamics depend on supply/demand ratios, not
absolute counts).
"""

import pytest

from repro.analysis.stats import area_under_series, value_at_hour
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import compare_protocols, run_simulation, sweep_parameter

HOUR = 3600.0


@pytest.fixture(scope="module")
def small_paper_config():
    """1/50-scale paper population: 1,002 peers."""
    return SimulationConfig().scaled(0.02)


@pytest.fixture(scope="module")
def comparison(small_paper_config):
    return compare_protocols(small_paper_config)


class TestCapacityAmplification:
    """Claims of Section 5.2(1) / Figure 4."""

    def test_dac_amplifies_capacity_faster(self, comparison):
        dac = comparison["dac"].metrics.capacity_series
        ndac = comparison["ndac"].metrics.capacity_series
        # Integral of the capacity curve: DAC must dominate.
        assert area_under_series(dac) > area_under_series(ndac)

    def test_dac_dominates_through_the_ramp(self, comparison):
        dac = comparison["dac"].metrics.capacity_series
        ndac = comparison["ndac"].metrics.capacity_series
        for hour in (24, 36, 48, 60, 72):
            assert value_at_hour(dac, hour) >= value_at_hour(ndac, hour)

    def test_final_capacity_at_least_95_percent_of_max(self, comparison):
        # "By the end of the 144-hour period, the system capacity achieved
        #  by DAC_p2p has reached at least 95% of the maximum capacity"
        assert comparison["dac"].capacity_fraction_of_max >= 0.95

    def test_growth_slows_after_the_arrival_window(self, comparison):
        dac = comparison["dac"].metrics.capacity_series
        ramp = value_at_hour(dac, 72) - value_at_hour(dac, 36)
        tail = value_at_hour(dac, 144) - value_at_hour(dac, 108)
        assert ramp > tail


class TestAdmissionRates:
    """Claims of Section 5.2(2) / Figure 5."""

    def test_dac_differentiates_admission_by_class(self, comparison):
        rejections = comparison["dac"].metrics.mean_rejections_before_admission()
        assert rejections[1] < rejections[3] < rejections[4]

    def test_ndac_does_not_differentiate(self, comparison):
        rejections = comparison["ndac"].metrics.mean_rejections_before_admission()
        spread = max(rejections.values()) - min(rejections.values())
        dac_rej = comparison["dac"].metrics.mean_rejections_before_admission()
        dac_spread = max(dac_rej.values()) - min(dac_rej.values())
        assert spread < dac_spread

    def test_dac_beats_ndac_for_every_class(self, comparison):
        """Table 1's headline: DAC rejections < NDAC rejections per class."""
        dac = comparison["dac"].metrics.mean_rejections_before_admission()
        ndac = comparison["ndac"].metrics.mean_rejections_before_admission()
        for peer_class in (1, 2, 3, 4):
            assert dac[peer_class] < ndac[peer_class]


class TestBufferingDelay:
    """Claims of Section 5.2(3) / Figure 6."""

    def test_dac_mean_delay_below_ndac_overall(self, comparison):
        dac = comparison["dac"].metrics.mean_buffering_delay_slots()
        ndac = comparison["ndac"].metrics.mean_buffering_delay_slots()
        dac_mean = sum(dac.values()) / len(dac)
        ndac_mean = sum(ndac.values()) / len(ndac)
        assert dac_mean < ndac_mean

    def test_delays_within_theorem_bounds(self, comparison):
        for result in comparison.values():
            delays = result.metrics.mean_buffering_delay_slots()
            for value in delays.values():
                # at least 2 suppliers (max offer is R0/2), at most M = 8
                assert 2.0 <= value <= 8.0


class TestWaitingTime:
    """Claims of Section 5.2(4) / Table 1."""

    def test_dac_waiting_time_ordered_by_class(self, comparison):
        waiting = comparison["dac"].metrics.mean_waiting_seconds()
        assert waiting[1] < waiting[4]

    def test_dac_improves_overall_waiting_time(self, comparison):
        dac = comparison["dac"].metrics.mean_waiting_seconds()
        ndac = comparison["ndac"].metrics.mean_waiting_seconds()
        assert sum(dac.values()) < sum(ndac.values())


class TestAdaptivity:
    """Claims of Section 5.2(5) / Figure 7."""

    def test_high_class_suppliers_start_tight_and_relax(self):
        config = SimulationConfig(arrival_pattern=4).scaled(0.02)
        result = run_simulation(config)
        series = result.metrics.favored_series[1]
        assert series[0].value < 2.0          # tight at the start
        assert series[-1].value == pytest.approx(4.0, abs=0.05)  # fully relaxed

    def test_all_classes_relax_once_demand_dries_up(self):
        config = SimulationConfig(arrival_pattern=4).scaled(0.02)
        result = run_simulation(config)
        for peer_class in (1, 2, 3, 4):
            series = result.metrics.favored_series[peer_class]
            if series:
                assert series[-1].value >= 3.9


class TestParameterStudies:
    """Claims of Section 5.2(6) / Figures 8 and 9."""

    @pytest.fixture(scope="class")
    def tiny(self):
        return SimulationConfig().scaled(0.02)

    def test_m4_slows_capacity_growth(self, tiny):
        sweep = sweep_parameter(tiny, "probe_candidates", [4, 8])
        area4 = area_under_series(sweep[4].metrics.capacity_series)
        area8 = area_under_series(sweep[8].metrics.capacity_series)
        assert area4 < area8

    def test_m_beyond_8_has_diminishing_impact(self, tiny):
        sweep = sweep_parameter(tiny, "probe_candidates", [4, 8, 16])
        area4 = area_under_series(sweep[4].metrics.capacity_series)
        area8 = area_under_series(sweep[8].metrics.capacity_series)
        area16 = area_under_series(sweep[16].metrics.capacity_series)
        assert (area8 - area4) > (area16 - area8)

    def test_aggressive_retry_beats_heavy_backoff(self, tiny):
        # Figure 9: constant backoff achieves the highest admission rate.
        sweep = sweep_parameter(tiny, "e_bkf", [1.0, 4.0])
        final_1 = value_at_hour(
            sweep[1.0].metrics.overall_admission_rate_series, 144
        )
        final_4 = value_at_hour(
            sweep[4.0].metrics.overall_admission_rate_series, 144
        )
        assert final_1 > final_4


class TestReproducibility:
    def test_identical_configs_identical_results(self, small_paper_config):
        a = run_simulation(small_paper_config)
        b = run_simulation(small_paper_config)
        assert a.metrics.to_dict() == b.metrics.to_dict()
        assert a.events_processed == b.events_processed
