"""Exact reproductions of every worked example in the paper's text.

These tests pin the implementation to the paper: if any of them fails, the
reproduction has drifted from the published system.
"""

import pytest

from repro.core.admission import AdmissionVector
from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    sweep_assignment,
)
from repro.core.capacity import CapacityLedger
from repro.core.model import ClassLadder
from repro.core.schedule import min_start_delay_slots
from repro.core.theorems import theorem1_min_delay_slots
from tests.conftest import offers_from_classes


@pytest.fixture
def ladder():
    return ClassLadder(4)


class TestFigure1:
    """Figure 1: two assignments for suppliers of classes 1, 2, 3, 3."""

    def test_assignment_one_delay_is_5dt(self, ladder):
        assignment = contiguous_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert min_start_delay_slots(assignment) == 5

    def test_assignment_two_delay_is_4dt(self, ladder):
        assignment = sweep_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert min_start_delay_slots(assignment) == 4

    def test_assignment_one_exact_blocks(self, ladder):
        # "Ps1 is assigned segments 8k..8k+3; Ps2: 8k+4, 8k+5; Ps3: 8k+6;
        #  Ps4: 8k+7"
        assignment = contiguous_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert assignment.segment_lists == ((0, 1, 2, 3), (4, 5), (6,), (7,))

    def test_assignment_two_exact_lists(self, ladder):
        assignment = sweep_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert assignment.segment_lists == ((0, 1, 3, 7), (2, 6), (5,), (4,))


class TestSection3WhileIterations:
    """Section 3's narration of the Figure-2 loop, iteration by iteration."""

    def test_iteration_narrative(self, ladder):
        assignment = sweep_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        ps1, ps2, ps3, ps4 = assignment.segment_lists
        # iteration 1: 7 -> Ps1, 6 -> Ps2, 5 -> Ps3, 4 -> Ps4
        assert 7 in ps1 and 6 in ps2 and ps3 == (5,) and ps4 == (4,)
        # iteration 2: 3 -> Ps1, 2 -> Ps2 (Ps2 done)
        assert 3 in ps1 and ps2 == (2, 6)
        # iterations 3 and 4: 1 and 0 -> Ps1
        assert ps1 == (0, 1, 3, 7)


class TestTheorem1:
    """Theorem 1: minimum buffering delay is n · δt."""

    def test_figure1_minimum_is_four(self, ladder):
        offers = offers_from_classes([1, 2, 3, 3], ladder)
        assert theorem1_min_delay_slots(len(offers)) == 4
        assert min_start_delay_slots(ots_assignment(offers, ladder)) == 4

    def test_buffering_delay_equals_supplier_count(self, ladder):
        # "the buffering delay of a peer-to-peer streaming session is equal
        #  to δt multiplied by the number of participating supplying peers"
        for classes in ([1, 1], [1, 2, 2], [2, 2, 2, 2], [1, 2, 3, 4, 4]):
            offers = offers_from_classes(classes, ladder)
            assignment = ots_assignment(offers, ladder)
            assert min_start_delay_slots(assignment) == len(classes)


class TestFigure3:
    """Figure 3: admission order changes capacity growth."""

    @pytest.fixture
    def initial_ledger(self, ladder):
        # two class-2 peers (Ps1, Ps2) and two class-1 peers (Ps3, Ps4)
        ledger = CapacityLedger(ladder)
        for peer_class in (2, 2, 1, 1):
            ledger.add_supplier(peer_class)
        return ledger

    def test_capacity_at_t0_is_one(self, initial_ledger):
        assert initial_ledger.sessions == 1

    def test_admitting_class1_first_reaches_capacity_two(self, initial_ledger):
        # Admit Pr3 (class 1): after one show time it joins the suppliers.
        initial_ledger.add_supplier(1)
        assert initial_ledger.sessions == 2
        # Both Pr1 and Pr2 (class 2) can now be admitted simultaneously;
        # after they finish, the fractional capacity is 2.5 (floor 2).
        initial_ledger.add_supplier(2)
        initial_ledger.add_supplier(2)
        assert initial_ledger.sessions_fractional == 2.5
        assert initial_ledger.sessions == 2

    def test_admitting_class2_first_stays_at_one(self, initial_ledger):
        initial_ledger.add_supplier(2)
        assert initial_ledger.sessions == 1

    def test_waiting_time_comparison(self):
        # first sequence: waits 0, T, 2T -> average T
        assert (0 + 1 + 2) / 3 == 1.0
        # second sequence: Pr3 waits 0, Pr1 and Pr2 wait T -> average 2T/3
        assert (1 + 1 + 0) / 3 == pytest.approx(2.0 / 3.0)


class TestSection41VectorExample:
    """Section 4.1's probability-vector worked example."""

    def test_class2_initial_vector(self, ladder):
        # "for a class-2 supplying peer (N = 4), its initial admission
        #  probability vector is [1.0, 1.0, 0.5, 0.25], and its initial
        #  favored classes are classes 1 and 2"
        vector = AdmissionVector.initial(2, ladder)
        assert vector.probabilities == [1.0, 1.0, 0.5, 0.25]
        assert vector.favored_classes() == [1, 2]


class TestSection51Setup:
    """Section 5.1's simulation constants."""

    def test_paper_configuration_constants(self):
        from repro.simulation.config import SimulationConfig

        config = SimulationConfig()
        assert config.total_peers == 50_100
        assert sum(config.seed_suppliers.values()) == 100
        assert config.probe_candidates == 8          # M = 8
        assert config.t_out_seconds == 20 * 60        # T_out = 20 min
        assert config.t_bkf_seconds == 10 * 60        # T_bkf = 10 min
        assert config.e_bkf == 2.0                    # E_bkf = 2
        assert config.media.show_seconds == 60 * 60   # 60-minute video

    def test_backoff_schedule_from_paper(self):
        # "after the i-th rejection, a requesting peer will back off
        #  10 * 2**(i-1) minutes before retry"
        from repro.core.requesting import backoff_delay

        minutes = [backoff_delay(i, 600.0, 2.0) / 60 for i in (1, 2, 3, 4)]
        assert minutes == [10, 20, 40, 80]
