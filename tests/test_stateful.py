"""Hypothesis *stateful* (model-based) tests for the mutable substrates.

Each rule machine drives a component through random operation sequences
while a trivially-correct reference model shadows it; any divergence is a
bug with a minimized reproduction.  Covered components:

* :class:`CentralDirectory` — the O(1) swap-removal registry;
* :class:`CapacityLedger` — incremental capacity accounting;
* :class:`ChordRing` — joins/leaves/puts/gets against a dict model;
* :class:`Simulator` — event ordering against a sorted-list model.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.capacity import CapacityLedger
from repro.core.model import ClassLadder
from repro.network.chord import ChordRing
from repro.network.directory import CentralDirectory
from repro.simulation.engine import Simulator

LADDER = ClassLadder(4)


class DirectoryMachine(RuleBasedStateMachine):
    """CentralDirectory vs membership sets plus a global class map.

    A peer's class is a property of the *peer* (the directory keeps one
    class per peer id, updated by the latest registration for any media),
    while membership is per media file — the model mirrors both.
    """

    def __init__(self):
        super().__init__()
        self.directory = CentralDirectory()
        self.members: dict[str, set[int]] = {"a": set(), "b": set()}
        self.classes: dict[int, int] = {}
        self.rng = random.Random(0)

    @rule(media=st.sampled_from(["a", "b"]),
          peer=st.integers(0, 30),
          peer_class=st.integers(1, 4))
    def register(self, media, peer, peer_class):
        self.directory.register(media, peer, peer_class)
        self.members[media].add(peer)
        self.classes[peer] = peer_class

    @rule(media=st.sampled_from(["a", "b"]), peer=st.integers(0, 30))
    def unregister(self, media, peer):
        if peer in self.members[media]:
            self.directory.unregister(media, peer)
            self.members[media].discard(peer)
        else:
            try:
                self.directory.unregister(media, peer)
                raise AssertionError("unregister of absent peer must raise")
            except Exception:
                pass

    @invariant()
    def counts_match(self):
        for media in ("a", "b"):
            assert self.directory.num_suppliers(media) == len(self.members[media])

    @invariant()
    def sampling_returns_exactly_the_population(self):
        for media in ("a", "b"):
            sample = self.directory.sample_candidates(media, 1000, self.rng)
            expected = {peer: self.classes[peer] for peer in self.members[media]}
            assert dict(sample) == expected


class LedgerMachine(RuleBasedStateMachine):
    """CapacityLedger vs a plain list of classes."""

    def __init__(self):
        super().__init__()
        self.ledger = CapacityLedger(LADDER)
        self.model: list[int] = []

    @rule(peer_class=st.integers(1, 4))
    def add(self, peer_class):
        self.ledger.add_supplier(peer_class)
        self.model.append(peer_class)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        peer_class = data.draw(st.sampled_from(self.model))
        self.ledger.remove_supplier(peer_class)
        self.model.remove(peer_class)

    @invariant()
    def totals_match(self):
        expected_units = sum(LADDER.offer_units(c) for c in self.model)
        assert self.ledger.total_units == expected_units
        assert self.ledger.sessions == expected_units // LADDER.full_rate_units
        assert self.ledger.num_suppliers == len(self.model)

    @invariant()
    def per_class_counts_match(self):
        for peer_class in LADDER.classes:
            assert self.ledger.per_class_count[peer_class] == self.model.count(
                peer_class
            )


class ChordMachine(RuleBasedStateMachine):
    """ChordRing storage vs a plain dict, across joins and leaves."""

    def __init__(self):
        super().__init__()
        self.ring = ChordRing(bits=16)
        self.ring.join(0)  # keep the ring non-empty
        self.next_peer = 1
        self.model: dict[str, object] = {}

    @rule()
    def join(self):
        self.ring.join(self.next_peer)
        self.next_peer += 1

    @precondition(lambda self: len(self.ring) > 1)
    @rule(data=st.data())
    def leave(self, data):
        node = data.draw(st.sampled_from(self.ring.nodes))
        self.ring.leave(node)

    @rule(name=st.sampled_from([f"k{i}" for i in range(12)]),
          value=st.integers())
    def put(self, name, value):
        if name in self.model:
            self.ring.delete(name)
        self.ring.put(name, value)
        self.model[name] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        name = data.draw(st.sampled_from(sorted(self.model)))
        assert self.ring.delete(name) is True
        del self.model[name]

    @invariant()
    def every_key_retrievable(self):
        for name, value in self.model.items():
            assert self.ring.get(name) == [value]

    @invariant()
    def ring_is_a_single_cycle(self):
        nodes = self.ring.nodes
        seen = set()
        node = nodes[0]
        for _ in range(len(nodes)):
            seen.add(node.node_id)
            node = node.successor
        assert len(seen) == len(nodes)


class SimulatorMachine(RuleBasedStateMachine):
    """Event engine vs a sorted reference of (time, sequence) pairs."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.expected: list[tuple[float, int]] = []
        self.fired: list[tuple[float, int]] = []
        self.counter = 0

    @rule(delay=st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False))
    def schedule(self, delay):
        self.counter += 1
        tag = (self.sim.now + delay, self.counter)
        self.expected.append(tag)
        self.sim.schedule_in(delay, self.fired.append, tag)

    @rule()
    def step(self):
        if self.sim.step():
            assert self.fired, "step fired nothing but reported True"
            tag = self.fired[-1]
            # The fired event must be the minimum of what was pending.
            assert tag == min(self.expected)
            self.expected.remove(tag)

    def teardown(self):
        self.sim.run()
        assert sorted(self.fired) == self.fired or all(
            a[0] <= b[0] for a, b in zip(self.fired, self.fired[1:])
        )


TestDirectoryStateful = DirectoryMachine.TestCase
TestLedgerStateful = LedgerMachine.TestCase
TestChordStateful = ChordMachine.TestCase
TestSimulatorStateful = SimulatorMachine.TestCase

for machine in (TestDirectoryStateful, TestLedgerStateful,
                TestChordStateful, TestSimulatorStateful):
    machine.settings = settings(max_examples=30, stateful_step_count=30,
                                deadline=None)
