"""Unit tests for ASCII charts, tables and CSV export."""

import csv

from repro.analysis.plots import ascii_chart, render_table, sparkline, write_csv
from repro.simulation.metrics import SeriesPoint


def series(*pairs):
    return [SeriesPoint(hour=float(h), value=float(v)) for h, v in pairs]


class TestAsciiChart:
    def test_chart_contains_title_legend_and_glyphs(self):
        chart = ascii_chart(
            {"dac": series((0, 0.0), (10, 5.0)), "ndac": series((0, 0.0), (10, 3.0))},
            title="capacity",
        )
        assert "capacity" in chart
        assert "* dac" in chart and "o ndac" in chart
        assert "*" in chart.split("\n")[1:][0] or any(
            "*" in line for line in chart.split("\n")
        )

    def test_empty_input_handled(self):
        assert "(no data)" in ascii_chart({}, title="nothing")
        assert "(no data)" in ascii_chart({"a": []}, title="nothing")

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": series((0, 5.0), (10, 5.0))})
        assert "flat" in chart

    def test_y_axis_labels_show_extent(self):
        chart = ascii_chart({"a": series((0, 0.0), (10, 250.0))})
        assert "250" in chart and "0" in chart

    def test_chart_dimensions_respected(self):
        chart = ascii_chart({"a": series((0, 0.0), (1, 1.0))}, width=30, height=5)
        body_lines = [l for l in chart.split("\n") if "|" in l]
        assert len(body_lines) == 5


class TestSparkline:
    def test_sparkline_length_bounded(self):
        line = sparkline(list(range(500)), width=50)
        assert 0 < len(line) <= 60

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone_input(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        table = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.25]], title="T"
        )
        lines = table.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in table and "22.25" in table

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "series.csv"
        write_csv(
            path,
            {
                "x": series((0, 1.0), (1, 2.0)),
                "y": series((0, 9.0)),
            },
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x_hour", "x_value", "y_hour", "y_value"]
        assert rows[1] == ["0.0", "1.0", "0.0", "9.0"]
        assert rows[2] == ["1.0", "2.0", "", ""]
