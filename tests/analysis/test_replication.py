"""Unit tests for multi-seed replication."""

import pytest

from repro.analysis.replication import replicate
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def replicated():
    config = SimulationConfig(
        seed_suppliers={1: 4},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=1,
        master_seed=100,
    )
    return replicate(config, replications=3)


class TestReplicate:
    def test_runs_requested_seeds(self, replicated):
        assert replicated.seeds == (100, 101, 102)
        assert len(replicated.results) == 3
        assert [r.config.master_seed for r in replicated.results] == [100, 101, 102]

    def test_seed_stride(self):
        config = SimulationConfig(
            seed_suppliers={1: 2},
            requesting_peers={1: 2, 2: 2, 3: 8, 4: 8},
            master_seed=5,
        )
        result = replicate(config, replications=2, seed_stride=10)
        assert result.seeds == (5, 15)

    def test_at_least_one_replication_required(self):
        with pytest.raises(ValueError):
            replicate(SimulationConfig(), replications=0)

    def test_scalar_summary_of_final_capacity(self, replicated):
        summary = replicated.final_capacity()
        # All requesters admitted in every seed -> identical capacity.
        expected = (4 * 8 + 10 * 8 + 10 * 4 + 40 * 2 + 40) // 16
        assert summary.mean == expected
        assert summary.half_width == 0.0
        assert len(summary.samples) == 3

    def test_scalar_summary_formats(self, replicated):
        text = str(replicated.final_capacity())
        assert "±" in text

    def test_per_class_scalars_have_spread_info(self, replicated):
        summary = replicated.rejections_of_class(4)
        assert summary.mean > 0
        assert summary.half_width >= 0.0
        delay = replicated.delay_of_class(1)
        assert 2.0 <= delay.mean <= 8.0


class TestEnvelope:
    def test_envelope_grid_and_ordering(self, replicated):
        envelope = replicated.capacity_envelope(step_hours=12.0)
        assert envelope.hours[0] == 0.0
        assert envelope.hours[-1] == 144.0
        for low, mean, high in zip(envelope.low, envelope.mean, envelope.high):
            assert low <= mean <= high

    def test_envelope_mean_is_nondecreasing(self, replicated):
        # Capacity never shrinks (no churn), so the mean curve is monotone.
        envelope = replicated.capacity_envelope(step_hours=12.0)
        assert list(envelope.mean) == sorted(envelope.mean)

    def test_mean_series_plottable(self, replicated):
        points = replicated.capacity_envelope(step_hours=24.0).mean_series()
        assert points[0].hour == 0.0
        assert points[-1].value > points[0].value
