"""Unit tests for the fluid (mean-field) capacity model."""

import pytest

from repro.analysis.fluid import (
    fluid_capacity_model,
    mean_offer_sessions,
)
from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def config():
    return SimulationConfig().scaled(0.1)


class TestMeanOffer:
    def test_paper_mix_is_015(self):
        # 10% * 1/2 + 10% * 1/4 + 40% * 1/8 + 40% * 1/16 = 0.15
        assert mean_offer_sessions(SimulationConfig()) == pytest.approx(0.15)

    def test_empty_population(self):
        config = SimulationConfig(requesting_peers={1: 0, 2: 0, 3: 0, 4: 0})
        assert mean_offer_sessions(config) == 0.0


class TestTrajectory:
    @pytest.fixture(scope="class")
    def trajectory(self, request):
        return fluid_capacity_model(SimulationConfig().scaled(0.1))

    def test_capacity_monotone_nondecreasing(self, trajectory):
        values = [p.value for p in trajectory.capacity]
        assert values == sorted(values)

    def test_starts_at_seed_capacity(self, trajectory):
        # 10 class-1 seeds at 1/10 scale -> 5 sessions
        assert trajectory.capacity[0].value == pytest.approx(5.0)

    def test_saturates_near_population_maximum(self, trajectory, config):
        # everyone is eventually admitted in the fluid limit
        maximum = 5.0 + 0.15 * config.total_requesting
        assert trajectory.final_capacity() == pytest.approx(maximum, rel=0.02)

    def test_all_peers_admitted(self, trajectory, config):
        assert trajectory.admitted_total == pytest.approx(
            config.total_requesting, rel=0.01
        )

    def test_backlog_rises_then_empties(self, trajectory):
        values = [p.value for p in trajectory.backlog]
        assert max(values) > 0.0
        assert values[-1] == pytest.approx(0.0, abs=1.0)

    def test_in_progress_bounded_by_capacity(self, trajectory):
        for busy, cap in zip(trajectory.in_progress, trajectory.capacity):
            assert busy.value <= cap.value + 1e-6

    def test_invalid_step_rejected(self, config):
        with pytest.raises(ConfigurationError):
            fluid_capacity_model(config, step_seconds=0.0)


class TestAgainstSimulation:
    def test_fluid_is_an_upper_envelope_of_the_des(self):
        """The DES (which pays probing/backoff costs) trails the fluid curve."""
        from repro.analysis.stats import value_at_hour
        from repro.simulation.runner import run_simulation

        config = SimulationConfig().scaled(0.02)
        fluid = fluid_capacity_model(config)
        des = run_simulation(config).metrics.capacity_series
        for hour in (12, 24, 48, 72, 120):
            fluid_value = value_at_hour(fluid.capacity, hour)
            des_value = value_at_hour(des, hour)
            assert des_value <= fluid_value * 1.05 + 2.0

    def test_fluid_and_des_share_the_endpoint(self):
        from repro.simulation.runner import run_simulation

        config = SimulationConfig().scaled(0.02)
        fluid = fluid_capacity_model(config)
        result = run_simulation(config)
        assert result.metrics.final_capacity() == pytest.approx(
            fluid.final_capacity(), rel=0.10
        )
