"""Unit tests for the paper figure/table renderers."""

import pytest

from repro.analysis import report
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import compare_protocols, run_simulation, sweep_parameter


@pytest.fixture(scope="module")
def results():
    config = SimulationConfig(
        seed_suppliers={1: 4},
        requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
        arrival_pattern=2,
        master_seed=5,
    )
    return compare_protocols(config)


class TestFigure1:
    def test_mentions_both_assignments_and_delays(self):
        text = report.figure1_report()
        assert "Assignment I" in text
        assert "5 x dt" in text and "4 x dt" in text
        assert "OTS_p2p" in text


class TestSimulationReports:
    def test_figure4_has_chart_and_final_capacities(self, results):
        text = report.figure4_report(results, pattern=2)
        assert "Figure 4" in text
        assert "dac" in text and "ndac" in text
        assert "% " in text or "%)" in text

    def test_figure5_lists_all_classes(self, results):
        text = report.figure5_report(results["dac"], label="dac")
        for c in (1, 2, 3, 4):
            assert f"class {c}" in text

    def test_figure6_reports_delays(self, results):
        text = report.figure6_report(results["dac"], label="dac")
        assert "buffering delay" in text
        assert "final:" in text

    def test_table1_formats_dac_slash_ndac(self, results):
        keyed = {("dac", 2): results["dac"], ("ndac", 2): results["ndac"]}
        text = report.table1_report(keyed)
        assert "Class 1" in text and "Class 4" in text
        assert "/" in text

    def test_table1_with_paper_values(self, results):
        keyed = {("dac", 2): results["dac"], ("ndac", 2): results["ndac"]}
        paper = {(c, 2): (1.0, 2.0) for c in (1, 2, 3, 4)}
        text = report.table1_report(keyed, paper_values=paper)
        assert "paper P2" in text

    def test_figure7_renders_when_series_exist(self, results):
        text = report.figure7_report(results["dac"])
        assert "Figure 7" in text

    def test_figure8_and_9_sweeps(self):
        config = SimulationConfig(
            seed_suppliers={1: 4},
            requesting_peers={1: 10, 2: 10, 3: 40, 4: 40},
            master_seed=5,
        )
        sweep_m = sweep_parameter(config, "probe_candidates", [4, 8])
        text8 = report.figure8_report(sweep_m, parameter_label="M")
        assert "M=4" in text8 and "M=8" in text8
        sweep_e = sweep_parameter(config, "e_bkf", [1.0, 2.0])
        text9 = report.figure9_report(sweep_e)
        assert "E_bkf=1" in text9 and "final admission rate" in text9


class TestSampleHours:
    def test_default_covers_horizon(self):
        hours = report.sample_hours()
        assert hours[0] == 0.0 and hours[-1] == 144.0
        assert all(b - a == 12.0 for a, b in zip(hours, hours[1:]))
