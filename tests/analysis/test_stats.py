"""Unit tests for series statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    align_series,
    area_under_series,
    mean_confidence_interval,
    series_max,
    value_at_hour,
    windowed_mean,
)
from repro.simulation.metrics import SeriesPoint


def series(*pairs):
    return [SeriesPoint(hour=h, value=v) for h, v in pairs]


class TestValueAtHour:
    def test_step_interpolation(self):
        s = series((0, 10.0), (5, 20.0), (10, 30.0))
        assert value_at_hour(s, 0) == 10.0
        assert value_at_hour(s, 4.9) == 10.0
        assert value_at_hour(s, 5) == 20.0
        assert value_at_hour(s, 99) == 30.0

    def test_before_first_sample_is_default(self):
        s = series((5, 20.0))
        assert math.isnan(value_at_hour(s, 1))
        assert value_at_hour(s, 1, default=0.0) == 0.0


class TestAlignSeries:
    def test_alignment_by_hour(self):
        named = {
            "a": series((0, 1.0), (10, 2.0)),
            "b": series((5, 7.0)),
        }
        aligned = align_series(named, [0, 5, 10])
        assert aligned["a"] == [1.0, 1.0, 2.0]
        assert math.isnan(aligned["b"][0])
        assert aligned["b"][1:] == [7.0, 7.0]


class TestWindowedMean:
    def test_three_hour_windows(self):
        s = series((0, 1.0), (1, 2.0), (2, 3.0), (3, 10.0), (4, 20.0))
        result = windowed_mean(s, 3.0)
        assert [(p.hour, p.value) for p in result] == [(1.5, 2.0), (4.5, 15.0)]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_mean(series((0, 1.0)), 0.0)


class TestConfidenceInterval:
    def test_single_value_zero_halfwidth(self):
        assert mean_confidence_interval([5.0]) == (5.0, 0.0)

    def test_mean_and_positive_halfwidth(self):
        mean, half = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert half > 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestScalarSummaries:
    def test_series_max(self):
        assert series_max(series((0, 1.0), (1, 9.0), (2, 3.0))) == 9.0
        assert math.isnan(series_max([]))

    def test_area_under_series_trapezoid(self):
        s = series((0, 0.0), (2, 2.0), (4, 2.0))
        # triangle (0..2): 2, rectangle (2..4): 4
        assert area_under_series(s) == 6.0

    def test_area_of_single_point_is_zero(self):
        assert area_under_series(series((1, 5.0))) == 0.0
