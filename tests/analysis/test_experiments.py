"""Unit tests for the named experiment registry."""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig(
        seed_suppliers={1: 2},
        requesting_peers={1: 4, 2: 4, 3: 16, 4: 16},
        master_seed=9,
    )


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig4", "fig5", "fig6", "table1", "fig7", "fig8a",
            "fig8b", "fig9",
        }

    def test_listing_mentions_every_id(self):
        text = list_experiments()
        for experiment_id in EXPERIMENTS:
            assert experiment_id in text

    def test_unknown_id_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99", tiny_config)


class TestRunners:
    def test_fig1_is_simulation_free(self, tiny_config):
        text = run_experiment("fig1", tiny_config)
        assert "Assignment I" in text

    def test_table1_produces_dac_ndac_cells(self, tiny_config):
        text = run_experiment("table1", tiny_config)
        assert "Class 1" in text and "/" in text

    @pytest.mark.parametrize("experiment_id", ["fig5", "fig6", "fig7"])
    def test_figure_experiments_render(self, tiny_config, experiment_id):
        text = run_experiment(experiment_id, tiny_config)
        assert "Figure" in text

    def test_fig9_sweeps_backoff(self, tiny_config):
        text = run_experiment("fig9", tiny_config)
        assert "E_bkf=1" in text and "E_bkf=4" in text
