"""Unit tests for requester-side DAC_p2p logic (Section 4.2)."""

import pytest

from repro.core.model import ClassLadder
from repro.core.requesting import (
    CandidateReport,
    CandidateStatus,
    backoff_delay,
    candidate_contact_order,
    choose_reminder_set,
    greedy_fill,
)
from repro.errors import ConfigurationError


def report(peer_id, peer_class, status, favors=False, ladder=None):
    ladder = ladder or ClassLadder(4)
    return CandidateReport(
        peer_id=peer_id,
        peer_class=peer_class,
        units=ladder.offer_units(peer_class),
        status=status,
        favors_requester=favors,
    )


class TestContactOrder:
    def test_high_class_first(self):
        reports = [
            report(1, 3, CandidateStatus.GRANTED),
            report(2, 1, CandidateStatus.GRANTED),
            report(3, 2, CandidateStatus.GRANTED),
        ]
        ordered = candidate_contact_order(reports)
        assert [r.peer_class for r in ordered] == [1, 2, 3]

    def test_ties_broken_by_peer_id(self):
        reports = [report(9, 2, CandidateStatus.GRANTED),
                   report(4, 2, CandidateStatus.GRANTED)]
        assert [r.peer_id for r in candidate_contact_order(reports)] == [4, 9]


class TestGreedyFill:
    def test_exact_fill_two_class1(self, ladder):
        granted = [report(1, 1, CandidateStatus.GRANTED),
                   report(2, 1, CandidateStatus.GRANTED)]
        selected, deficit = greedy_fill(granted, ladder)
        assert deficit == 0
        assert [r.peer_id for r in selected] == [1, 2]

    def test_skips_offer_that_would_overshoot(self, ladder):
        # 1/2 + 1/4 + 1/4 granted plus an extra 1/2: greedy takes
        # 1/2, then the second 1/2 completes R0 — the quarters are unused.
        granted = [
            report(1, 1, CandidateStatus.GRANTED),
            report(2, 2, CandidateStatus.GRANTED),
            report(3, 2, CandidateStatus.GRANTED),
            report(4, 1, CandidateStatus.GRANTED),
        ]
        selected, deficit = greedy_fill(granted, ladder)
        assert deficit == 0
        assert [r.peer_id for r in selected] == [1, 4]

    def test_partial_fill_reports_shortfall(self, ladder):
        granted = [report(1, 2, CandidateStatus.GRANTED),
                   report(2, 3, CandidateStatus.GRANTED)]
        selected, deficit = greedy_fill(granted, ladder)
        assert len(selected) == 2
        assert deficit == ladder.full_rate_units - 4 - 2

    def test_empty_grant_set(self, ladder):
        selected, deficit = greedy_fill([], ladder)
        assert selected == []
        assert deficit == ladder.full_rate_units

    def test_greedy_fill_is_exact_when_any_subset_is(self, ladder, rng):
        # Fundamental power-of-two property: if some subset of the granted
        # offers sums to R0, greedy descending finds one.
        from itertools import combinations

        for _ in range(50):
            classes = [rng.randint(1, 4) for _ in range(rng.randint(1, 10))]
            granted = [
                report(i + 1, c, CandidateStatus.GRANTED) for i, c in enumerate(classes)
            ]
            subset_exists = any(
                sum(r.units for r in combo) == ladder.full_rate_units
                for size in range(1, len(granted) + 1)
                for combo in combinations(granted, size)
            )
            _selected, deficit = greedy_fill(granted, ladder)
            assert (deficit == 0) == subset_exists

    def test_non_granted_report_rejected(self, ladder):
        with pytest.raises(ConfigurationError):
            greedy_fill([report(1, 1, CandidateStatus.BUSY)], ladder)


class TestReminderSet:
    def test_only_busy_favoring_candidates_chosen(self, ladder):
        busy = [
            report(1, 1, CandidateStatus.BUSY, favors=True),
            report(2, 1, CandidateStatus.BUSY, favors=False),
            report(3, 2, CandidateStatus.BUSY, favors=True),
        ]
        chosen = choose_reminder_set(busy, shortfall_units=12)
        assert [r.peer_id for r in chosen] == [1, 3]

    def test_covers_shortfall_without_overshoot(self, ladder):
        busy = [
            report(1, 1, CandidateStatus.BUSY, favors=True),
            report(2, 2, CandidateStatus.BUSY, favors=True),
            report(3, 2, CandidateStatus.BUSY, favors=True),
        ]
        # shortfall of 1/4 R0 (4 units): only one class-2 peer is reminded
        chosen = choose_reminder_set(busy, shortfall_units=4)
        assert [r.peer_id for r in chosen] == [2]

    def test_high_class_candidates_reminded_first(self, ladder):
        busy = [
            report(5, 3, CandidateStatus.BUSY, favors=True),
            report(6, 1, CandidateStatus.BUSY, favors=True),
        ]
        chosen = choose_reminder_set(busy, shortfall_units=10)
        assert chosen[0].peer_id == 6

    def test_zero_shortfall_means_no_reminders(self, ladder):
        busy = [report(1, 1, CandidateStatus.BUSY, favors=True)]
        assert choose_reminder_set(busy, 0) == []

    def test_non_busy_candidates_ignored(self, ladder):
        mixed = [
            report(1, 1, CandidateStatus.GRANTED, favors=True),
            report(2, 1, CandidateStatus.DOWN, favors=True),
        ]
        assert choose_reminder_set(mixed, 16) == []


class TestBackoff:
    def test_paper_schedule(self):
        # T_bkf = 10 min, E_bkf = 2: "after the i-th rejection, back off
        # 10 * 2**(i-1) minutes"
        t_bkf = 600.0
        assert backoff_delay(1, t_bkf, 2.0) == 600.0
        assert backoff_delay(2, t_bkf, 2.0) == 1200.0
        assert backoff_delay(5, t_bkf, 2.0) == 9600.0

    def test_constant_backoff_with_unit_factor(self):
        for i in (1, 2, 7):
            assert backoff_delay(i, 600.0, 1.0) == 600.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            backoff_delay(0, 600.0, 2.0)
        with pytest.raises(ConfigurationError):
            backoff_delay(1, -1.0, 2.0)
        with pytest.raises(ConfigurationError):
            backoff_delay(1, 600.0, 0.5)
