"""Unit tests for capacity accounting, including the paper's Figure 3 math."""

import pytest

from repro.core.capacity import CapacityLedger, capacity_of_classes, max_capacity_sessions
from repro.core.model import ClassLadder
from repro.errors import CapacityError


class TestFigure3Arithmetic:
    """The worked capacity example of the paper's Section 4 (Figure 3)."""

    def test_initial_capacity_is_one(self, ladder):
        # two class-2 peers (1/4 each) and two class-1 peers (1/2 each):
        # floor(1/4 + 1/4 + 1/2 + 1/2) = floor(1.5) = 1
        ledger = CapacityLedger(ladder)
        for peer_class in (2, 2, 1, 1):
            ledger.add_supplier(peer_class)
        assert ledger.sessions_fractional == 1.5
        assert ledger.sessions == 1

    def test_admitting_class1_requester_grows_capacity_to_two(self, ladder):
        ledger = CapacityLedger(ladder)
        for peer_class in (2, 2, 1, 1):
            ledger.add_supplier(peer_class)
        ledger.add_supplier(1)  # Pr3 finished its session and joined
        assert ledger.sessions == 2

    def test_admitting_class2_requester_keeps_capacity_one(self, ladder):
        ledger = CapacityLedger(ladder)
        for peer_class in (2, 2, 1, 1):
            ledger.add_supplier(peer_class)
        ledger.add_supplier(2)  # Pr1 (class 2) admitted instead
        assert ledger.sessions == 1


class TestLedger:
    def test_empty_ledger(self, ladder):
        ledger = CapacityLedger(ladder)
        assert ledger.sessions == 0
        assert ledger.num_suppliers == 0

    def test_add_remove_roundtrip(self, ladder):
        ledger = CapacityLedger(ladder)
        ledger.add_supplier(3)
        ledger.add_supplier(3)
        ledger.remove_supplier(3)
        assert ledger.per_class_count[3] == 1
        assert ledger.total_units == ladder.offer_units(3)

    def test_remove_absent_supplier_raises(self, ladder):
        with pytest.raises(CapacityError):
            CapacityLedger(ladder).remove_supplier(1)

    def test_snapshot_fields(self, ladder):
        ledger = CapacityLedger(ladder)
        for _ in range(4):
            ledger.add_supplier(2)
        snap = ledger.snapshot()
        assert snap["sessions"] == 1
        assert snap["num_suppliers"] == 4
        assert snap["sessions_fractional"] == 1.0

    def test_sixteen_class4_peers_make_one_session(self, ladder):
        ledger = CapacityLedger(ladder)
        for _ in range(16):
            ledger.add_supplier(4)
        assert ledger.sessions == 1


class TestPopulationCapacity:
    def test_paper_population_maximum(self, ladder):
        # 5100 class-1, 5000 class-2, 20000 class-3, 20000 class-4:
        # 5100/2 + 5000/4 + 20000/8 + 20000/16 = 7550 sessions
        counts = {1: 5100, 2: 5000, 3: 20000, 4: 20000}
        assert max_capacity_sessions(counts, ladder) == 7550

    def test_fractional_capacity(self, ladder):
        assert capacity_of_classes({1: 1, 2: 1}, ladder) == 0.75

    def test_negative_count_rejected(self, ladder):
        with pytest.raises(CapacityError):
            max_capacity_sessions({1: -1}, ladder)
        with pytest.raises(CapacityError):
            capacity_of_classes({1: -1}, ladder)

    def test_max_capacity_floors(self, ladder):
        assert max_capacity_sessions({1: 3}, ladder) == 1  # 1.5 -> 1
