"""Unit tests for OTS_p2p and the baseline assignment algorithms."""

import pytest

from repro.core.assignment import (
    Assignment,
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
    sweep_assignment,
)
from repro.core.schedule import min_start_delay_slots
from repro.core.model import ClassLadder, SupplierOffer
from repro.errors import AssignmentError
from tests.conftest import offers_from_classes


class TestSweepPaperExample:
    """The worked example of the paper's Section 3 / Figures 1-2.

    The literal Figure-2 pseudo-code (``sweep_assignment``) reproduces the
    paper's enumerated segment lists exactly.
    """

    @pytest.fixture
    def figure1(self, ladder):
        return sweep_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)

    def test_period_is_eight_segments(self, figure1):
        assert figure1.period_len == 8

    def test_exact_paper_segment_lists(self, figure1):
        # "after the first 'while' iteration, segments 7, 6, 5, 4 are
        #  assigned to Ps1..Ps4; after the second, segments 3, 2 to Ps1, Ps2;
        #  during the last two, segments 1 and 0 to Ps1."
        assert figure1.segment_lists == ((0, 1, 3, 7), (2, 6), (5,), (4,))

    def test_quotas_match_bandwidth_shares(self, figure1):
        assert [figure1.quota_of(j) for j in range(4)] == [4, 2, 1, 1]

    def test_supplier_of_segment_round_trips(self, figure1):
        assert figure1.supplier_of_segment(7).peer_id == 1
        assert figure1.supplier_of_segment(6).peer_id == 2
        assert figure1.supplier_of_segment(5).peer_id == 3
        assert figure1.supplier_of_segment(4).peer_id == 4

    def test_sweep_matches_ots_delay_on_paper_example(self, ladder, figure1):
        optimal = ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        assert min_start_delay_slots(figure1) == min_start_delay_slots(optimal) == 4


class TestSweepVsOtsDivergence:
    """The literal sweep is not optimal on every input (DESIGN.md §6)."""

    def test_known_counterexample(self, ladder):
        offers = offers_from_classes([1, 3, 3, 3, 4, 4], ladder)
        sweep = sweep_assignment(offers, ladder)
        optimal = ots_assignment(offers, ladder)
        assert min_start_delay_slots(sweep) == 7
        assert min_start_delay_slots(optimal) == 6  # = n, per Theorem 1

    def test_sweep_never_beats_ots(self, ladder, rng):
        from tests.conftest import random_feasible_classes

        for _ in range(50):
            classes = random_feasible_classes(rng, ladder)
            offers = offers_from_classes(classes, ladder)
            assert min_start_delay_slots(
                sweep_assignment(offers, ladder)
            ) >= min_start_delay_slots(ots_assignment(offers, ladder))


class TestOtsGeneral:
    def test_accepts_unsorted_input(self, ladder):
        shuffled = offers_from_classes([3, 1, 3, 2], ladder)
        assignment = ots_assignment(shuffled, ladder)
        # Suppliers end up sorted by descending offer regardless of input.
        assert [o.peer_class for o in assignment.suppliers] == [1, 2, 3, 3]

    def test_two_class1_suppliers(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 1], ladder), ladder)
        assert assignment.period_len == 2
        # Both arrival slots are at slot 2; each supplier carries one segment.
        assert sorted(len(s) for s in assignment.segment_lists) == [1, 1]

    def test_single_supplier_requires_full_rate(self):
        # Only a ladder with a class offering R0 itself would allow n=1; on
        # the paper's ladder every offer is <= R0/2 so one supplier is
        # infeasible.
        ladder = ClassLadder(4)
        with pytest.raises(AssignmentError):
            ots_assignment(offers_from_classes([1], ladder), ladder)

    def test_empty_supplier_set_rejected(self, ladder):
        with pytest.raises(AssignmentError):
            ots_assignment([], ladder)

    def test_all_lowest_class(self, ladder):
        assignment = ots_assignment(offers_from_classes([4] * 16, ladder), ladder)
        assert assignment.period_len == 16
        # Every supplier carries exactly one segment.
        assert all(len(lst) == 1 for lst in assignment.segment_lists)
        # The literal sweep deals them from the back, one per supplier.
        sweep = sweep_assignment(offers_from_classes([4] * 16, ladder), ladder)
        assert [lst for lst in sweep.segment_lists] == [(15 - j,) for j in range(16)]

    def test_assignment_partitions_period(self, ladder, rng):
        from tests.conftest import random_feasible_classes

        for _ in range(25):
            classes = random_feasible_classes(rng, ladder)
            assignment = ots_assignment(offers_from_classes(classes, ladder), ladder)
            assigned = sorted(
                s for segments in assignment.segment_lists for s in segments
            )
            assert assigned == list(range(assignment.period_len))


class TestBaselines:
    def test_contiguous_matches_paper_assignment_one(self, ladder):
        assignment = contiguous_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert assignment.segment_lists == ((0, 1, 2, 3), (4, 5), (6,), (7,))

    def test_round_robin_deals_from_front(self, ladder):
        assignment = round_robin_assignment(
            offers_from_classes([1, 2, 3, 3], ladder), ladder
        )
        assert assignment.segment_lists == ((0, 4, 6, 7), (1, 5), (2,), (3,))

    def test_baselines_cover_period(self, ladder):
        offers = offers_from_classes([2, 2, 2, 2], ladder)
        for algorithm in (contiguous_assignment, round_robin_assignment):
            assignment = algorithm(offers, ladder)
            assigned = sorted(
                s for segments in assignment.segment_lists for s in segments
            )
            assert assigned == list(range(assignment.period_len))


class TestAssignmentValidation:
    def test_mismatched_lengths_rejected(self, ladder):
        offers = tuple(offers_from_classes([1, 1], ladder))
        with pytest.raises(AssignmentError):
            Assignment(suppliers=offers, period_len=2, segment_lists=((0, 1),))

    def test_duplicate_segment_rejected(self, ladder):
        offers = tuple(offers_from_classes([1, 1], ladder))
        with pytest.raises(AssignmentError):
            Assignment(
                suppliers=offers, period_len=2, segment_lists=((0,), (0,))
            )

    def test_missing_segment_rejected(self, ladder):
        offers = tuple(offers_from_classes([1, 1], ladder))
        with pytest.raises(AssignmentError):
            Assignment(
                suppliers=offers, period_len=2, segment_lists=((0,), (2,))
            )

    def test_describe_mentions_all_suppliers(self, ladder):
        assignment = ots_assignment(offers_from_classes([1, 2, 2], ladder), ladder)
        text = assignment.describe()
        for offer in assignment.suppliers:
            assert f"peer {offer.peer_id}" in text
