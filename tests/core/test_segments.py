"""Unit tests for segment-geometry arithmetic."""

import pytest

from repro.core import segments as seg
from repro.core.model import ClassLadder
from repro.errors import AssignmentError, InfeasibleSessionError
from tests.conftest import offers_from_classes


class TestPeriodGeometry:
    def test_lowest_class_is_numerically_largest(self):
        offers = offers_from_classes([1, 2, 3, 3])
        assert seg.lowest_class(offers) == 3

    def test_lowest_class_of_empty_set_raises(self):
        with pytest.raises(AssignmentError):
            seg.lowest_class([])

    def test_period_segments_is_two_to_the_lowest(self):
        assert seg.period_segments(1) == 2
        assert seg.period_segments(3) == 8
        assert seg.period_segments(4) == 16

    def test_period_segments_rejects_nonpositive(self):
        with pytest.raises(AssignmentError):
            seg.period_segments(0)

    def test_quota_is_proportional_to_bandwidth(self):
        # In a period of 2**3 = 8 segments: class 1 carries 4, class 2
        # carries 2, class 3 carries 1.
        assert seg.quota(1, 3) == 4
        assert seg.quota(2, 3) == 2
        assert seg.quota(3, 3) == 1

    def test_quota_rejects_class_below_period_lowest(self):
        with pytest.raises(AssignmentError):
            seg.quota(4, 3)

    def test_quotas_fill_the_period_exactly(self):
        # For any feasible supplier set, quotas sum to the period length.
        ladder = ClassLadder(4)
        offers = offers_from_classes([2, 2, 2, 3, 4, 4], ladder)
        lowest = seg.lowest_class(offers)
        total = sum(seg.quota(o.peer_class, lowest) for o in offers)
        assert total == seg.period_segments(lowest)


class TestFeasibility:
    def test_exact_sum_passes(self, ladder):
        seg.check_feasible(offers_from_classes([1, 1], ladder), ladder)
        seg.check_feasible(offers_from_classes([1, 2, 3, 3], ladder), ladder)
        seg.check_feasible(offers_from_classes([4] * 16, ladder), ladder)

    def test_undersupply_rejected(self, ladder):
        with pytest.raises(InfeasibleSessionError):
            seg.check_feasible(offers_from_classes([1, 2], ladder), ladder)

    def test_oversupply_rejected(self, ladder):
        with pytest.raises(InfeasibleSessionError):
            seg.check_feasible(offers_from_classes([1, 1, 4], ladder), ladder)

    def test_units_must_match_class(self, ladder):
        from repro.core.model import SupplierOffer

        bad = [SupplierOffer(1, 1, 8), SupplierOffer(2, 2, 8)]  # class 2 lies
        with pytest.raises(InfeasibleSessionError):
            seg.check_feasible(bad, ladder)


class TestSegmentsInPeriod:
    def test_period_zero_starts_at_zero(self):
        assert list(seg.segments_in_period(0, 8)) == list(range(8))

    def test_later_periods_offset_by_period_length(self):
        assert list(seg.segments_in_period(3, 4)) == [12, 13, 14, 15]

    def test_negative_period_rejected(self):
        with pytest.raises(AssignmentError):
            seg.segments_in_period(-1, 8)
