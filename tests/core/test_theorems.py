"""Tests of Theorem 1: OTS_p2p achieves the minimum delay, which is n·δt."""

import pytest

from repro.core.assignment import (
    contiguous_assignment,
    ots_assignment,
    round_robin_assignment,
)
from repro.core.model import ClassLadder
from repro.core.schedule import min_start_delay_slots
from repro.core.theorems import (
    assignment_is_optimal,
    brute_force_min_delay_slots,
    theorem1_min_delay_slots,
)
from repro.errors import AssignmentError
from tests.conftest import offers_from_classes, random_feasible_classes


class TestClosedForm:
    def test_minimum_delay_equals_supplier_count(self):
        assert theorem1_min_delay_slots(2) == 2
        assert theorem1_min_delay_slots(7) == 7

    def test_zero_suppliers_rejected(self):
        with pytest.raises(AssignmentError):
            theorem1_min_delay_slots(0)


class TestOtsMeetsTheorem:
    @pytest.mark.parametrize(
        "classes",
        [
            [1, 1],
            [1, 2, 2],
            [1, 2, 3, 3],
            [2, 2, 2, 2],
            [1, 2, 3, 4, 4],
            [2, 2, 3, 3, 3, 4, 4],
            [3, 3, 3, 3, 3, 3, 3, 3],
        ],
    )
    def test_ots_delay_is_number_of_suppliers(self, ladder, classes):
        assignment = ots_assignment(offers_from_classes(classes, ladder), ladder)
        assert min_start_delay_slots(assignment) == len(classes)
        assert assignment_is_optimal(assignment)

    def test_randomized_supplier_sets(self, ladder, rng):
        for _ in range(100):
            classes = random_feasible_classes(rng, ladder)
            assignment = ots_assignment(offers_from_classes(classes, ladder), ladder)
            assert min_start_delay_slots(assignment) == len(classes)


class TestBruteForceOracle:
    """The strongest executable form of Theorem 1: no assignment beats n."""

    @pytest.mark.parametrize(
        "classes",
        [[1, 1], [1, 2, 2], [2, 2, 2, 2], [1, 2, 3, 3], [1, 3, 3, 3, 3], [2, 2, 2, 3, 3]],
    )
    def test_brute_force_confirms_theorem(self, ladder, classes):
        offers = offers_from_classes(classes, ladder)
        assert brute_force_min_delay_slots(offers, ladder) == len(classes)

    def test_brute_force_refuses_huge_periods(self):
        ladder = ClassLadder(8)
        offers = offers_from_classes([1, 2, 3, 4, 5, 6, 7, 8, 8], ladder)
        with pytest.raises(AssignmentError):
            brute_force_min_delay_slots(offers, ladder, max_period=64)

    def test_baselines_never_beat_ots(self, ladder, rng):
        for _ in range(30):
            classes = random_feasible_classes(rng, ladder)
            offers = offers_from_classes(classes, ladder)
            optimal = min_start_delay_slots(ots_assignment(offers, ladder))
            for baseline in (contiguous_assignment, round_robin_assignment):
                assert min_start_delay_slots(baseline(offers, ladder)) >= optimal
