"""Unit tests for the peer/bandwidth-class model (Section 2)."""

import pytest

from repro.core.model import ClassLadder, Peer, SupplierOffer, sort_offers_descending
from repro.errors import ClassLadderError, ConfigurationError


class TestClassLadder:
    def test_full_rate_units_is_power_of_two(self):
        assert ClassLadder(4).full_rate_units == 16
        assert ClassLadder(1).full_rate_units == 2
        assert ClassLadder(6).full_rate_units == 64

    def test_offer_units_follow_paper_ladder(self):
        ladder = ClassLadder(4)
        # class-i offers R0 / 2**i, i.e. 2**(N-i) units of R0/2**N
        assert [ladder.offer_units(c) for c in (1, 2, 3, 4)] == [8, 4, 2, 1]

    def test_offer_fraction_is_half_per_class_step(self):
        ladder = ClassLadder(4)
        assert ladder.offer_fraction(1) == 0.5
        assert ladder.offer_fraction(2) == 0.25
        assert ladder.offer_fraction(4) == 0.0625

    def test_offers_of_all_classes_are_distinct_powers(self):
        ladder = ClassLadder(5)
        units = [ladder.offer_units(c) for c in ladder.classes]
        assert units == sorted(units, reverse=True)
        assert all(u & (u - 1) == 0 for u in units)  # powers of two

    def test_class_for_units_inverts_offer_units(self):
        ladder = ClassLadder(4)
        for c in ladder.classes:
            assert ladder.class_for_units(ladder.offer_units(c)) == c

    def test_class_for_units_rejects_off_ladder_values(self):
        with pytest.raises(ClassLadderError):
            ClassLadder(4).class_for_units(3)

    def test_segment_slots_doubles_per_class(self):
        ladder = ClassLadder(4)
        assert [ladder.segment_slots(c) for c in (1, 2, 3, 4)] == [2, 4, 8, 16]

    def test_validate_class_bounds(self):
        ladder = ClassLadder(4)
        with pytest.raises(ClassLadderError):
            ladder.validate_class(0)
        with pytest.raises(ClassLadderError):
            ladder.validate_class(5)
        with pytest.raises(ClassLadderError):
            ladder.validate_class(True)  # bools are not classes

    def test_ladder_needs_at_least_one_class(self):
        with pytest.raises(ConfigurationError):
            ClassLadder(0)

    def test_is_lower_class_uses_paper_convention(self):
        ladder = ClassLadder(4)
        # "the lower the i, the higher the class"
        assert ladder.is_lower_class(4, 1)
        assert not ladder.is_lower_class(1, 4)
        assert not ladder.is_lower_class(2, 2)


class TestOffers:
    def test_offer_for_peer_matches_ladder(self):
        ladder = ClassLadder(4)
        peer = Peer(peer_id=7, peer_class=2)
        offer = SupplierOffer.for_peer(peer, ladder)
        assert offer.units == 4
        assert offer.peer_id == 7
        assert peer.offer_units(ladder) == 4

    def test_sort_offers_descending_by_bandwidth_then_id(self):
        ladder = ClassLadder(4)
        offers = [
            SupplierOffer(3, 3, ladder.offer_units(3)),
            SupplierOffer(1, 1, ladder.offer_units(1)),
            SupplierOffer(2, 3, ladder.offer_units(3)),
        ]
        ordered = sort_offers_descending(offers)
        assert [o.peer_id for o in ordered] == [1, 2, 3]

    def test_sort_is_stable_and_non_mutating(self):
        ladder = ClassLadder(4)
        offers = [SupplierOffer(i, 4, 1) for i in (5, 3, 9)]
        ordered = sort_offers_descending(offers)
        assert [o.peer_id for o in ordered] == [3, 5, 9]
        assert [o.peer_id for o in offers] == [5, 3, 9]
