"""Unit tests for the supplier-side DAC_p2p mechanics (Section 4.1)."""

import pytest

from repro.core.admission import AdmissionVector, SupplierAdmissionState
from repro.core.model import ClassLadder
from repro.errors import ConfigurationError


class TestInitialVector:
    def test_paper_example_class2(self, ladder):
        # "for a class-2 supplying peer (and suppose N = 4), its initial
        #  admission probability vector is [1.0, 1.0, 0.5, 0.25]"
        vec = AdmissionVector.initial(2, ladder)
        assert vec.probabilities == [1.0, 1.0, 0.5, 0.25]

    def test_initial_favored_classes_paper_example(self, ladder):
        vec = AdmissionVector.initial(2, ladder)
        assert vec.favored_classes() == [1, 2]
        assert vec.lowest_favored_class() == 2

    def test_class1_vector_halves_below_own_class(self, ladder):
        vec = AdmissionVector.initial(1, ladder)
        assert vec.probabilities == [1.0, 0.5, 0.25, 0.125]

    def test_lowest_class_supplier_starts_saturated(self, ladder):
        vec = AdmissionVector.initial(4, ladder)
        assert vec.probabilities == [1.0] * 4
        assert vec.is_saturated()

    def test_every_supplier_always_favors_class1(self, ladder):
        for own_class in ladder.classes:
            assert AdmissionVector.initial(own_class, ladder).is_favored(1)

    def test_all_ones_is_ndac_vector(self, ladder):
        vec = AdmissionVector.all_ones(ladder)
        assert vec.favored_classes() == [1, 2, 3, 4]


class TestElevation:
    def test_elevate_doubles_sub_one_entries(self, ladder):
        vec = AdmissionVector.initial(1, ladder)
        assert vec.elevate() is True
        assert vec.probabilities == [1.0, 1.0, 0.5, 0.25]

    def test_elevation_saturates_and_reports_no_change(self, ladder):
        vec = AdmissionVector.initial(1, ladder)
        changes = [vec.elevate() for _ in range(5)]
        # three elevations reach all-ones; the fourth reports no change
        assert changes == [True, True, True, False, False]
        assert vec.is_saturated()

    def test_elevation_never_exceeds_one(self, ladder):
        vec = AdmissionVector(ladder, [1.0, 0.75, 0.5, 0.25])
        vec.elevate()
        assert all(p <= 1.0 for p in vec.probabilities)


class TestTighten:
    def test_tighten_reinitializes_around_reminder_class(self, ladder):
        vec = AdmissionVector.all_ones(ladder)
        vec.tighten(2)
        assert vec.probabilities == [1.0, 1.0, 0.5, 0.25]

    def test_tighten_to_class1_is_strictest(self, ladder):
        vec = AdmissionVector.all_ones(ladder)
        vec.tighten(1)
        assert vec.probabilities == [1.0, 0.5, 0.25, 0.125]

    def test_tighten_validates_class(self, ladder):
        with pytest.raises(Exception):
            AdmissionVector.all_ones(ladder).tighten(9)

    def test_copy_is_independent(self, ladder):
        vec = AdmissionVector.initial(2, ladder)
        clone = vec.copy()
        clone.elevate()
        assert vec.probabilities == [1.0, 1.0, 0.5, 0.25]


class TestSupplierStateMachine:
    @pytest.fixture
    def state(self, ladder):
        return SupplierAdmissionState(own_class=2, ladder=ladder)

    def test_initial_state_idle_with_initial_vector(self, state):
        assert not state.busy
        assert state.vector.probabilities == [1.0, 1.0, 0.5, 0.25]
        assert state.lowest_favored_class() == 2

    def test_double_enlist_rejected(self, state):
        state.on_session_start()
        with pytest.raises(ConfigurationError):
            state.on_session_start()

    def test_session_end_without_favored_request_elevates(self, state):
        state.on_session_start()
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 1.0, 1.0, 0.5]

    def test_session_end_with_favored_request_no_reminder_keeps_vector(self, state):
        state.on_session_start()
        state.on_request_while_busy(1)  # class 1 is favored
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 1.0, 0.5, 0.25]

    def test_unfavored_request_while_busy_still_elevates(self, state):
        state.on_session_start()
        state.on_request_while_busy(4)  # Pa[4] = 0.25 < 1: not favored
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 1.0, 1.0, 0.5]

    def test_reminder_tightens_to_highest_reminder_class(self, state):
        state.on_session_start()
        state.on_request_while_busy(2)
        state.on_reminder(2)
        state.on_request_while_busy(1)
        state.on_reminder(1)
        state.on_session_end()
        # k-hat = 1 (the highest class that left a reminder)
        assert state.vector.probabilities == [1.0, 0.5, 0.25, 0.125]

    def test_reminder_beats_elevation(self, state):
        state.on_session_start()
        state.on_reminder(2)
        state.on_session_end()
        assert state.vector.probabilities == [1.0, 1.0, 0.5, 0.25]

    def test_session_bookkeeping_resets_between_sessions(self, state):
        state.on_session_start()
        state.on_request_while_busy(1)
        state.on_session_end()
        # Second session sees fresh bookkeeping: no favored request recorded,
        # so ending it elevates.
        before = list(state.vector.probabilities)
        state.on_session_start()
        state.on_session_end()
        assert state.vector.probabilities != before

    def test_idle_timeout_elevates_until_saturated(self, state):
        assert state.on_idle_timeout() is True
        assert state.vector.probabilities == [1.0, 1.0, 1.0, 0.5]
        assert state.on_idle_timeout() is True
        assert state.on_idle_timeout() is False  # saturated now

    def test_idle_timeout_while_busy_rejected(self, state):
        state.on_session_start()
        with pytest.raises(ConfigurationError):
            state.on_idle_timeout()

    def test_grant_probability_reads_vector(self, state):
        assert state.grant_probability(1) == 1.0
        assert state.grant_probability(4) == 0.25
        assert state.favors(2) and not state.favors(3)
