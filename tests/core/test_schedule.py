"""Unit tests for transmission schedules and buffering-delay evaluation."""

import pytest

from repro.core.assignment import contiguous_assignment, ots_assignment
from repro.core.schedule import (
    TransmissionSchedule,
    min_start_delay_slots,
    verify_continuous_playback,
)
from repro.errors import SchedulingError
from tests.conftest import offers_from_classes


@pytest.fixture
def figure1_ots(ladder):
    return ots_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)


@pytest.fixture
def figure1_contiguous(ladder):
    return contiguous_assignment(offers_from_classes([1, 2, 3, 3], ladder), ladder)


class TestArrivalTimes:
    def test_ots_arrivals_match_hand_computation(self, figure1_ots):
        schedule = TransmissionSchedule.from_assignment(figure1_ots)
        # Ps1 (class 1, 2 slots/segment) carries 0,1,3,7 -> 2,4,6,8
        # Ps2 (class 2, 4 slots/segment) carries 2,6   -> 4,8
        # Ps3/Ps4 (class 3, 8 slots/segment) carry 5 / 4 -> 8 / 8
        assert schedule.local_arrival == (2, 4, 4, 6, 8, 8, 8, 8)

    def test_arrivals_are_periodic(self, figure1_ots):
        schedule = TransmissionSchedule.from_assignment(figure1_ots)
        for segment in range(8):
            assert (
                schedule.arrival_slot(segment + 8)
                == schedule.arrival_slot(segment) + 8
            )
            assert (
                schedule.arrival_slot(segment + 24)
                == schedule.arrival_slot(segment) + 24
            )

    def test_arrivals_iterator_matches_pointwise(self, figure1_ots):
        schedule = TransmissionSchedule.from_assignment(figure1_ots)
        listed = dict(schedule.arrivals(20))
        assert listed == {s: schedule.arrival_slot(s) for s in range(20)}

    def test_negative_segment_rejected(self, figure1_ots):
        schedule = TransmissionSchedule.from_assignment(figure1_ots)
        with pytest.raises(SchedulingError):
            schedule.arrival_slot(-1)

    def test_every_supplier_pipe_is_exactly_full(self, ladder, rng):
        # quota * per-segment time == period length, for every supplier
        from tests.conftest import random_feasible_classes

        for _ in range(20):
            classes = random_feasible_classes(rng, ladder)
            assignment = ots_assignment(offers_from_classes(classes, ladder), ladder)
            for offer, segments in zip(
                assignment.suppliers, assignment.segment_lists
            ):
                per_segment = 1 << offer.peer_class
                assert len(segments) * per_segment == assignment.period_len


class TestMinStartDelay:
    def test_paper_figure1_delays(self, figure1_ots, figure1_contiguous):
        assert min_start_delay_slots(figure1_ots) == 4
        assert min_start_delay_slots(figure1_contiguous) == 5

    def test_slack_nonnegative_at_min_delay(self, figure1_ots):
        schedule = TransmissionSchedule.from_assignment(figure1_ots)
        delay = min_start_delay_slots(figure1_ots)
        for segment in range(40):
            assert schedule.slack(segment, delay) >= 0

    def test_min_delay_is_tight(self, figure1_ots, figure1_contiguous):
        for assignment in (figure1_ots, figure1_contiguous):
            delay = min_start_delay_slots(assignment)
            assert verify_continuous_playback(assignment, delay)
            assert not verify_continuous_playback(assignment, delay - 1)


class TestContinuousPlayback:
    def test_larger_delay_always_safe(self, figure1_ots):
        delay = min_start_delay_slots(figure1_ots)
        for extra in (1, 3, 10):
            assert verify_continuous_playback(figure1_ots, delay + extra)

    def test_custom_horizon(self, figure1_ots):
        delay = min_start_delay_slots(figure1_ots)
        assert verify_continuous_playback(figure1_ots, delay, num_segments=1000)

    def test_zero_delay_fails_on_paper_ladder(self, figure1_ots):
        # Every class needs at least 2 slots per segment, so segment 0 can
        # never be ready at slot 0.
        assert not verify_continuous_playback(figure1_ots, 0)
